#include "ppd/resil/faultplan.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::resil {

namespace {

/// splitmix64 finalizer — the same mixer mc::Rng seeds from, inlined here
/// so the injection layer stays independent of the MC library.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double parse_prob(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0)
    throw ParseError("fault plan: " + key + " needs a probability in [0, 1], got '" +
                     value + "'");
  return p;
}

/// Parse "p:seconds" into (probability, non-negative seconds).
void parse_prob_seconds(const std::string& key, const std::string& value,
                        double* p, double* seconds) {
  const auto colon = value.find(':');
  if (colon == std::string::npos)
    throw ParseError("fault plan: " + key + " needs p:seconds, got '" + value +
                     "'");
  *p = parse_prob(key, value.substr(0, colon));
  *seconds = std::strtod(value.c_str() + colon + 1, nullptr);
  if (*seconds < 0.0)
    throw ParseError("fault plan: " + key + " seconds must be >= 0");
}

}  // namespace

double fault_uniform(std::uint64_t seed, std::uint64_t item, std::uint64_t site,
                     std::uint64_t draw) {
  const std::uint64_t h =
      mix64(mix64(mix64(seed ^ 0x5eedfau) ^ item) ^ (site << 32 | draw));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
}

struct detail::FaultContext {
  const FaultPlan* plan = nullptr;
  std::uint64_t item = 0;
  std::uint64_t draws = 0;
};

namespace {

thread_local detail::FaultContext* t_context = nullptr;

/// Deterministic draw: hash (seed, item, site, per-item draw counter) into
/// [0, 1) and compare. The draw counter advances only while a scope is
/// active, and item bodies are deterministic, so the k-th consultation of a
/// given seam within a given item always sees the same value.
bool draw(FaultSite site, double probability) {
  if (probability <= 0.0 || t_context == nullptr) return false;
  detail::FaultContext& ctx = *t_context;
  const double u = fault_uniform(ctx.plan->seed, ctx.item,
                                 static_cast<std::uint64_t>(site), ctx.draws++);
  return u < probability;
}

}  // namespace

FaultScope::FaultScope(const FaultPlan& plan, std::uint64_t item) {
  if (!plan.enabled()) return;
  previous_ = t_context;
  auto* ctx = new detail::FaultContext;
  ctx->plan = &plan;
  ctx->item = item;
  t_context = ctx;
  installed_ = true;
}

FaultScope::~FaultScope() {
  if (!installed_) return;
  delete t_context;
  t_context = previous_;
}

bool fault_injection_active() { return t_context != nullptr; }

bool inject_newton_nonconvergence() {
  return t_context != nullptr &&
         draw(FaultSite::kNewtonNonConverge,
              t_context->plan->p_newton_nonconverge);
}

bool inject_newton_nan() {
  return t_context != nullptr &&
         draw(FaultSite::kNewtonNan, t_context->plan->p_newton_nan);
}

void inject_item_failure() {
  if (t_context == nullptr) return;
  if (draw(FaultSite::kItemFail, t_context->plan->p_item_fail))
    throw NumericalError("injected item failure (fault plan seed " +
                         std::to_string(t_context->plan->seed) + ")");
}

void inject_item_delay() {
  if (t_context == nullptr) return;
  if (draw(FaultSite::kItemDelay, t_context->plan->p_item_delay))
    std::this_thread::sleep_for(
        std::chrono::duration<double>(t_context->plan->delay_seconds));
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (util::trim(spec).empty() || util::iequals(util::trim(spec), "off"))
    return plan;
  for (const auto& raw : util::split(spec, ',')) {
    const std::string tok(util::trim(raw));
    if (tok.empty()) continue;
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw ParseError("fault plan: expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "newton") {
      plan.p_newton_nonconverge = parse_prob(key, value);
    } else if (key == "nan") {
      plan.p_newton_nan = parse_prob(key, value);
    } else if (key == "item") {
      plan.p_item_fail = parse_prob(key, value);
    } else if (key == "delay") {
      parse_prob_seconds(key, value, &plan.p_item_delay, &plan.delay_seconds);
    } else if (key == "cancel-after") {
      plan.cancel_after_items =
          static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "sock-partial") {
      plan.p_sock_partial = parse_prob(key, value);
    } else if (key == "sock-reset") {
      plan.p_sock_reset = parse_prob(key, value);
    } else if (key == "sock-stall") {
      parse_prob_seconds(key, value, &plan.p_sock_stall,
                         &plan.sock_stall_seconds);
    } else if (key == "sock-delay") {
      parse_prob_seconds(key, value, &plan.p_sock_delay,
                         &plan.sock_delay_seconds);
    } else {
      throw ParseError("fault plan: unknown key '" + key +
                       "' (use seed|newton|nan|item|delay|cancel-after|"
                       "sock-partial|sock-reset|sock-stall|sock-delay)");
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("PPD_FAULT_PLAN");
  return spec == nullptr ? FaultPlan{} : parse(spec);
}

std::string FaultPlan::describe() const {
  if (!enabled() && !socket_enabled()) return "off";
  std::string s = "seed=" + std::to_string(seed);
  const auto add = [&s](const std::string& part) { s += "," + part; };
  if (p_newton_nonconverge > 0.0)
    add("newton=" + std::to_string(p_newton_nonconverge));
  if (p_newton_nan > 0.0) add("nan=" + std::to_string(p_newton_nan));
  if (p_item_fail > 0.0) add("item=" + std::to_string(p_item_fail));
  if (p_item_delay > 0.0)
    add("delay=" + std::to_string(p_item_delay) + ":" +
        std::to_string(delay_seconds));
  if (cancel_after_items > 0)
    add("cancel-after=" + std::to_string(cancel_after_items));
  if (p_sock_partial > 0.0) add("sock-partial=" + std::to_string(p_sock_partial));
  if (p_sock_reset > 0.0) add("sock-reset=" + std::to_string(p_sock_reset));
  if (p_sock_stall > 0.0)
    add("sock-stall=" + std::to_string(p_sock_stall) + ":" +
        std::to_string(sock_stall_seconds));
  if (p_sock_delay > 0.0)
    add("sock-delay=" + std::to_string(p_sock_delay) + ":" +
        std::to_string(sock_delay_seconds));
  return s;
}

}  // namespace ppd::resil
