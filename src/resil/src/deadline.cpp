#include "ppd/resil/deadline.hpp"

#include <atomic>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

namespace ppd::resil {

using Clock = std::chrono::steady_clock;

Deadline Deadline::after(double seconds) {
  Deadline d;
  if (seconds <= 0.0) return d;
  d.limited_ = true;
  d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(seconds));
  return d;
}

Deadline Deadline::earliest(const Deadline& a, const Deadline& b) {
  if (!a.limited_) return b;
  if (!b.limited_) return a;
  return a.at_ <= b.at_ ? a : b;
}

bool Deadline::expired() const { return limited_ && Clock::now() >= at_; }

double Deadline::remaining_seconds() const {
  if (!limited_) return std::numeric_limits<double>::max();
  return std::chrono::duration<double>(at_ - Clock::now()).count();
}

struct Watchdog::State {
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  std::atomic<bool> fired{false};
  std::thread thread;
};

Watchdog::Watchdog(exec::CancelToken token, double budget_seconds) {
  if (budget_seconds <= 0.0) return;
  state_ = std::make_shared<State>();
  auto state = state_;
  state_->thread = std::thread([state, token, budget_seconds]() mutable {
    std::unique_lock<std::mutex> lock(state->mutex);
    const bool stopped = state->cv.wait_for(
        lock, std::chrono::duration<double>(budget_seconds),
        [&state] { return state->stop; });
    if (!stopped) {
      state->fired.store(true, std::memory_order_release);
      token.cancel();
    }
  });
}

Watchdog::~Watchdog() {
  if (state_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->cv.notify_all();
  state_->thread.join();
}

bool Watchdog::fired() const {
  return state_ != nullptr && state_->fired.load(std::memory_order_acquire);
}

}  // namespace ppd::resil
