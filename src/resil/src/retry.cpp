#include "ppd/resil/retry.hpp"

#include "ppd/obs/metrics.hpp"
#include "ppd/util/error.hpp"

namespace ppd::resil {

namespace {

thread_local std::string t_last_ladder;  // NOLINT(cert-err58-cpp)

void count(const RetryPolicy& policy, const RetryRung& rung, const char* what) {
  if (policy.counter_prefix.empty() || !obs::metrics_enabled()) return;
  obs::counter(policy.counter_prefix + ".rung." + rung.name + "." + what).add();
}

}  // namespace

LadderOutcome run_ladder(
    const RetryPolicy& policy,
    const std::function<bool(const RetryRung& rung, int attempt)>& try_rung,
    const Deadline& deadline, const std::string& what) {
  PPD_REQUIRE(try_rung != nullptr, "run_ladder needs a rung callback");
  LadderOutcome out;
  for (std::size_t r = 0; r < policy.rungs.size(); ++r) {
    const RetryRung& rung = policy.rungs[r];
    if (!out.attempted.empty()) out.attempted += ',';
    out.attempted += rung.name;
    for (int attempt = 0; attempt < std::max(1, rung.attempts); ++attempt) {
      if (deadline.expired()) {
        set_last_ladder(out.attempted);
        throw TimeoutError(what + " exceeded its wall-clock budget [rungs attempted: " +
                           out.attempted + "]");
      }
      count(policy, rung, "attempts");
      ++out.total_attempts;
      if (try_rung(rung, attempt)) {
        count(policy, rung, "successes");
        out.success = true;
        out.rung = static_cast<int>(r);
        t_last_ladder.clear();
        return out;
      }
    }
  }
  set_last_ladder(out.attempted);
  return out;
}

std::string take_last_ladder() {
  std::string s = std::move(t_last_ladder);
  t_last_ladder.clear();
  return s;
}

void set_last_ladder(const std::string& attempted) { t_last_ladder = attempted; }

}  // namespace ppd::resil
