#include "ppd/resil/quarantine.hpp"

#include <algorithm>
#include <ostream>

#include "json_util.hpp"

namespace ppd::resil {

bool QuarantineReport::contains(std::size_t item) const {
  // Entries are sorted by item index.
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), item,
      [](const QuarantineEntry& e, std::size_t i) { return e.item < i; });
  return it != entries.end() && it->item == item;
}

void QuarantineReport::write_json(std::ostream& os) const {
  os << "{\n  \"items\": " << items << ",\n  \"quarantined\": " << entries.size()
     << ",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const QuarantineEntry& e = entries[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"item\": " << e.item << ", \"seed\": " << e.seed
       << ", \"rung\": \"" << detail::json_escape(e.rung) << "\", \"error\": \""
       << detail::json_escape(e.error) << "\"}";
  }
  os << (entries.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace ppd::resil
