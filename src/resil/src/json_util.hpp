// Internal JSON helpers for the resil file formats (checkpoint and
// quarantine reports): string escaping for the writers and a minimal
// recursive-descent parser for the subset the checkpoint schema uses
// (objects, arrays, strings, unsigned integers). Not a general JSON
// library — unknown keys are tolerated, other value types are not.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ppd::resil::detail {

[[nodiscard]] std::string json_escape(const std::string& s);

struct JsonValue {
  enum class Kind { kString, kNumber, kObject, kArray };
  Kind kind = Kind::kString;
  std::string string;
  std::uint64_t number = 0;
  std::map<std::string, std::shared_ptr<JsonValue>> object;
  std::vector<std::shared_ptr<JsonValue>> array;

  /// Typed member accessors; throw ParseError on missing key / wrong kind.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::uint64_t as_number() const;
};

/// Parse one JSON document (the checkpoint subset). Throws ParseError with
/// the byte offset on malformed input.
[[nodiscard]] JsonValue json_parse(const std::string& text);

}  // namespace ppd::resil::detail
