#include "ppd/resil/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "json_util.hpp"
#include "ppd/util/error.hpp"

namespace ppd::resil {

Checkpoint::Checkpoint(Checkpoint&& other) noexcept {
  const std::lock_guard<std::mutex> lock(other.mutex_);
  seed_ = other.seed_;
  items_ = other.items_;
  context_ = std::move(other.context_);
  bound_ = other.bound_;
  payloads_ = std::move(other.payloads_);
  quarantine_ = std::move(other.quarantine_);
}

Checkpoint& Checkpoint::operator=(Checkpoint&& other) noexcept {
  if (this == &other) return *this;
  const std::scoped_lock lock(mutex_, other.mutex_);
  seed_ = other.seed_;
  items_ = other.items_;
  context_ = std::move(other.context_);
  bound_ = other.bound_;
  payloads_ = std::move(other.payloads_);
  quarantine_ = std::move(other.quarantine_);
  return *this;
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw ParseError("cannot open checkpoint file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const detail::JsonValue doc = detail::json_parse(buffer.str());
  if (!doc.has("resil_checkpoint") || doc.at("resil_checkpoint").as_number() != 1)
    throw ParseError(path + ": not a ppd::resil checkpoint (version 1)");

  Checkpoint ck;
  ck.seed_ = doc.at("seed").as_number();
  ck.items_ = static_cast<std::size_t>(doc.at("items").as_number());
  ck.context_ = doc.at("context").as_string();
  ck.bound_ = true;
  const detail::JsonValue& completed = doc.at("completed");
  if (completed.kind != detail::JsonValue::Kind::kArray)
    throw ParseError(path + ": 'completed' must be an array");
  for (const auto& entry : completed.array) {
    const auto item = static_cast<std::size_t>(entry->at("item").as_number());
    if (item >= ck.items_)
      throw ParseError(path + ": completed item out of range");
    ck.payloads_[item] = entry->at("payload").as_string();
  }
  if (doc.has("quarantine")) {
    const detail::JsonValue& quarantine = doc.at("quarantine");
    if (quarantine.kind != detail::JsonValue::Kind::kArray)
      throw ParseError(path + ": 'quarantine' must be an array");
    for (const auto& entry : quarantine.array) {
      QuarantineEntry q;
      q.item = static_cast<std::size_t>(entry->at("item").as_number());
      q.seed = entry->at("seed").as_number();
      q.rung = entry->at("rung").as_string();
      q.error = entry->at("error").as_string();
      ck.quarantine_.push_back(std::move(q));
    }
  }
  return ck;
}

void Checkpoint::bind(std::uint64_t seed, std::size_t items,
                      const std::string& context) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (bound_) {
    if (seed_ != seed || items_ != items || context_ != context)
      throw ParseError(
          "checkpoint does not match this sweep (stored seed " +
          std::to_string(seed_) + ", " + std::to_string(items_) + " items, '" +
          context_ + "'; sweep has seed " + std::to_string(seed) + ", " +
          std::to_string(items) + " items, '" + context + "')");
    return;
  }
  seed_ = seed;
  items_ = items;
  context_ = context;
  bound_ = true;
}

bool Checkpoint::has(std::size_t item) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return payloads_.count(item) != 0;
}

std::string Checkpoint::payload(std::size_t item) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = payloads_.find(item);
  PPD_REQUIRE(it != payloads_.end(), "checkpoint has no payload for this item");
  return it->second;
}

void Checkpoint::record(std::size_t item, std::string payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  payloads_[item] = std::move(payload);
}

void Checkpoint::record_quarantine(QuarantineEntry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  quarantine_.push_back(std::move(entry));
}

void Checkpoint::clear_quarantine() {
  const std::lock_guard<std::mutex> lock(mutex_);
  quarantine_.clear();
}

std::size_t Checkpoint::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return payloads_.size();
}

std::vector<QuarantineEntry> Checkpoint::quarantine() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return quarantine_;
}

void Checkpoint::save(const std::string& path) const {
  std::ostringstream os;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"resil_checkpoint\": 1,\n  \"seed\": " << seed_
       << ",\n  \"items\": " << items_ << ",\n  \"context\": \""
       << detail::json_escape(context_) << "\",\n";
    // Contiguous completed ranges [lo, hi), a jq-friendly summary of
    // progress (the payload list below is authoritative).
    os << "  \"ranges\": [";
    bool first_range = true;
    for (auto it = payloads_.begin(); it != payloads_.end();) {
      const std::size_t lo = it->first;
      std::size_t hi = lo + 1;
      ++it;
      while (it != payloads_.end() && it->first == hi) {
        ++hi;
        ++it;
      }
      os << (first_range ? "" : ", ") << "[" << lo << ", " << hi << "]";
      first_range = false;
    }
    os << "],\n  \"completed\": [";
    bool first = true;
    for (const auto& [item, payload] : payloads_) {
      os << (first ? "\n" : ",\n") << "    {\"item\": " << item
         << ", \"payload\": \"" << detail::json_escape(payload) << "\"}";
      first = false;
    }
    os << (payloads_.empty() ? "]" : "\n  ]") << ",\n  \"quarantine\": [";
    first = true;
    for (const QuarantineEntry& q : quarantine_) {
      os << (first ? "\n" : ",\n") << "    {\"item\": " << q.item
         << ", \"seed\": " << q.seed << ", \"rung\": \""
         << detail::json_escape(q.rung) << "\", \"error\": \""
         << detail::json_escape(q.error) << "\"}";
      first = false;
    }
    os << (quarantine_.empty() ? "]" : "\n  ]") << "\n}\n";
  }
  // Atomic publish: never leave a torn checkpoint behind a crash.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    PPD_REQUIRE(static_cast<bool>(out), "cannot write checkpoint: " + tmp);
    out << os.str();
    out.flush();
    PPD_REQUIRE(static_cast<bool>(out), "short write on checkpoint: " + tmp);
  }
  PPD_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot publish checkpoint: " + path);
}

}  // namespace ppd::resil
