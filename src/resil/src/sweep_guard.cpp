#include "ppd/resil/sweep_guard.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "ppd/obs/metrics.hpp"
#include "ppd/resil/retry.hpp"
#include "ppd/util/error.hpp"

namespace ppd::resil {

struct SweepGuard::State {
  std::mutex mutex;                       // guards entries
  std::vector<QuarantineEntry> entries;   // unsorted until finish()
  Checkpoint checkpoint;
  bool checkpoint_enabled = false;
  bool resumed = false;
  std::atomic<std::size_t> fresh_completed{0};
  std::mutex save_mutex;                  // serializes checkpoint writes
  std::chrono::steady_clock::time_point last_save;
};

SweepGuard::SweepGuard(const SweepPolicy& policy, std::size_t items,
                       std::uint64_t seed, std::string context,
                       std::function<std::uint64_t(std::size_t)> item_seed)
    : policy_(policy),
      items_(items),
      seed_(seed),
      context_(std::move(context)),
      item_seed_(std::move(item_seed)),
      state_(std::make_shared<State>()) {
  if (!item_seed_)
    item_seed_ = [](std::size_t i) { return static_cast<std::uint64_t>(i); };
  state_->checkpoint_enabled = !policy_.checkpoint_path.empty();
  if (policy_.resume) {
    PPD_REQUIRE(state_->checkpoint_enabled,
                "resume requested without a checkpoint path");
    state_->checkpoint = Checkpoint::load(policy_.checkpoint_path);
    state_->checkpoint.bind(seed_, items_, context_);
    // Quarantined items are re-run on resume (and, being a pure function of
    // the item index, fail identically); keeping the stored entries would
    // double-count them.
    state_->checkpoint.clear_quarantine();
    state_->resumed = true;
  } else if (state_->checkpoint_enabled) {
    state_->checkpoint.bind(seed_, items_, context_);
  }
  state_->last_save = std::chrono::steady_clock::now();
}

SweepGuard::~SweepGuard() = default;

void SweepGuard::arm(exec::ParallelOptions& par) {
  cancel_ = par.cancel;
  armed_ = true;
  if (policy_.quarantine) {
    const std::shared_ptr<State> state = state_;
    const std::function<std::uint64_t(std::size_t)> item_seed = item_seed_;
    par.on_item_error = [state, item_seed](std::size_t item,
                                           const std::exception_ptr& error) {
      QuarantineEntry entry;
      entry.item = item;
      entry.seed = item_seed(item);
      entry.rung = take_last_ladder();
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        entry.error = e.what();
      } catch (...) {
        entry.error = "unknown error";
      }
      obs::counter("resil.quarantined").add();
      const std::lock_guard<std::mutex> lock(state->mutex);
      state->entries.push_back(entry);
      if (state->checkpoint_enabled)
        state->checkpoint.record_quarantine(std::move(entry));
      return true;  // swallow: the sweep keeps going
    };
  }
  if (policy_.sweep_budget_seconds > 0.0)
    watchdog_ =
        std::make_unique<Watchdog>(cancel_, policy_.sweep_budget_seconds);
}

std::optional<std::string> SweepGuard::cached(std::size_t item) const {
  const State& s = *state_;
  if (!s.resumed || !s.checkpoint.has(item)) return std::nullopt;
  return s.checkpoint.payload(item);
}

void SweepGuard::complete(std::size_t item, std::string payload) {
  State& s = *state_;
  if (s.checkpoint_enabled) {
    s.checkpoint.record(item, std::move(payload));
    maybe_save(false);
  }
  const std::size_t done =
      s.fresh_completed.fetch_add(1, std::memory_order_relaxed) + 1;
  if (policy_.faults.cancel_after_items > 0 &&
      done == policy_.faults.cancel_after_items)
    cancel_.cancel();
}

void SweepGuard::cancelled(const exec::CancelledError& error) {
  maybe_save(true);
  if (watchdog_ && watchdog_->fired())
    throw TimeoutError("sweep exceeded its wall budget of " +
                       std::to_string(policy_.sweep_budget_seconds) +
                       " s: " + context_);
  throw error;
}

QuarantineReport SweepGuard::finish() {
  maybe_save(true);
  QuarantineReport report;
  report.items = items_;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    report.entries = state_->entries;
  }
  // Insertion order depends on thread scheduling; the report does not.
  std::sort(report.entries.begin(), report.entries.end(),
            [](const QuarantineEntry& a, const QuarantineEntry& b) {
              return a.item < b.item;
            });
  return report;
}

void SweepGuard::maybe_save(bool force) {
  State& s = *state_;
  if (!s.checkpoint_enabled) return;
  const std::lock_guard<std::mutex> lock(s.save_mutex);
  const auto now = std::chrono::steady_clock::now();
  if (!force) {
    const double since =
        std::chrono::duration<double>(now - s.last_save).count();
    if (since < policy_.checkpoint_interval_seconds) return;
  }
  s.checkpoint.save(policy_.checkpoint_path);
  s.last_save = now;
}

}  // namespace ppd::resil
