#include "ppd/cache/solve_cache.hpp"

#include <atomic>
#include <cstdlib>

#include "ppd/obs/metrics.hpp"

namespace ppd::cache {

namespace {

std::atomic<bool> g_cache_enabled{[] {
  const char* env = std::getenv("PPD_CACHE");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

std::size_t capacity_from_env() {
  const char* env = std::getenv("PPD_CACHE_BYTES");
  if (env == nullptr || env[0] == '\0') return SolveCache::kDefaultCapacityBytes;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0') || v == 0)
    return SolveCache::kDefaultCapacityBytes;
  return static_cast<std::size_t>(v);
}

}  // namespace

bool cache_enabled() { return g_cache_enabled.load(std::memory_order_relaxed); }

void set_cache_enabled(bool enabled) {
  g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

SolveCache::SolveCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::size_t SolveCache::entry_bytes(const std::vector<double>& values) {
  // Payload + LRU node + hash-map slot; close enough for a budget whose
  // only job is bounding resident memory.
  return values.size() * sizeof(double) + 96;
}

std::optional<std::vector<double>> SolveCache::get(std::uint64_t key) {
  if (!cache_enabled()) return std::nullopt;
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    obs::counter("cache.solve.miss").add();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  obs::counter("cache.solve.hit").add();
  return it->second->second;
}

void SolveCache::put(std::uint64_t key, std::vector<double> values) {
  if (!cache_enabled()) return;
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Racing second computation of the same key: by the determinism
    // contract the bits match; just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.bytes += entry_bytes(values);
  shard.lru.emplace_front(key, std::move(values));
  shard.index.emplace(key, shard.lru.begin());
  evict_over_budget(shard);
}

void SolveCache::evict_over_budget(Shard& shard) {
  const std::size_t budget =
      capacity_bytes_.load(std::memory_order_relaxed) / kShards;
  while (shard.bytes > budget && shard.lru.size() > 1) {
    const auto& victim = shard.lru.back();
    shard.bytes -= entry_bytes(victim.second);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
    obs::counter("cache.solve.evictions").add();
  }
}

void SolveCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

void SolveCache::set_capacity_bytes(std::size_t bytes) {
  capacity_bytes_.store(bytes, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    evict_over_budget(shard);
  }
}

std::size_t SolveCache::capacity_bytes() const {
  return capacity_bytes_.load(std::memory_order_relaxed);
}

SolveCache::Totals SolveCache::totals() const {
  Totals t;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    t.hits += shard.hits;
    t.misses += shard.misses;
    t.evictions += shard.evictions;
    t.entries += shard.lru.size();
    t.bytes += shard.bytes;
  }
  return t;
}

SolveCache& SolveCache::global() {
  static SolveCache cache(capacity_from_env());
  return cache;
}

SolveCache& solve_cache() { return SolveCache::global(); }

}  // namespace ppd::cache
