// Thread-safe, sharded, content-addressed solve cache (the solve-reuse
// layer under ppd::core and ppd::spice).
//
// Keys are 64-bit content hashes (ppd::cache::Hasher) of everything that
// determines a solve's result: circuit topology and exact device
// parameters (which already embed the process corner, the per-sample
// Monte-Carlo variation draw and the injected fault resistance), the
// stimulus, and the simulator settings. Values are small vectors of
// doubles — a probed measurement encoding or a converged Newton solution.
//
// Determinism contract: a stored value must be a pure function of its key
// content, computed by a deterministic solver. Under that contract the
// cache is invisible to results: cached and uncached runs are bit-identical
// at any thread count, because whichever thread computes an entry first
// stores exactly the value every other thread would have computed. The
// hit/miss *pattern* varies with scheduling; the returned values do not.
//
// Eviction is LRU under a byte budget, sharded 16 ways (shard = low key
// bits) so concurrent sweeps contend on different mutexes. Reuse is
// opportunistic by design: an evicted entry is recomputed, never wrong.
//
// Kill switch: PPD_CACHE=0 in the environment (or set_cache_enabled(false))
// turns every get into a pass-through miss and every put into a no-op —
// the pre-cache execution, bit for bit. PPD_CACHE_BYTES overrides the
// default 64 MiB budget. Hits/misses/evictions are counted in the ppd::obs
// registry ("cache.solve.hit" / ".miss" / ".evictions").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ppd/cache/hash.hpp"

namespace ppd::cache {

/// Runtime kill switch (default on; PPD_CACHE=0 disables).
[[nodiscard]] bool cache_enabled();
void set_cache_enabled(bool enabled);

class SolveCache {
 public:
  static constexpr std::size_t kDefaultCapacityBytes = 64u << 20;

  explicit SolveCache(std::size_t capacity_bytes = kDefaultCapacityBytes);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Copy of the entry, refreshing its LRU position; nullopt on miss or
  /// when the cache is disabled.
  [[nodiscard]] std::optional<std::vector<double>> get(std::uint64_t key);

  /// Insert (no-op when disabled or when the key is already present — by
  /// the determinism contract a racing second computation produced the
  /// same bits). Evicts least-recently-used entries past the byte budget.
  void put(std::uint64_t key, std::vector<double> values);

  /// Drop every entry (bench A/B sections and tests).
  void clear();

  /// Resize the byte budget; evicts immediately when shrinking.
  void set_capacity_bytes(std::size_t bytes);
  [[nodiscard]] std::size_t capacity_bytes() const;

  /// Merged occupancy/traffic totals (exact, but racing writers may land
  /// between shard reads; quiescent reads are exact).
  struct Totals {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  [[nodiscard]] Totals totals() const;

  /// The process-wide instance every wired-in layer shares.
  static SolveCache& global();

 private:
  static constexpr std::size_t kShards = 16;
  /// Accounted footprint of one entry: payload plus map/list overhead.
  static std::size_t entry_bytes(const std::vector<double>& values);

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<std::uint64_t, std::vector<double>>> lru;
    std::unordered_map<std::uint64_t, decltype(lru)::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(std::uint64_t key) { return shards_[key % kShards]; }
  /// Must hold `shard.mutex`.
  void evict_over_budget(Shard& shard);

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> capacity_bytes_;
};

/// Shorthand for SolveCache::global().
[[nodiscard]] SolveCache& solve_cache();

}  // namespace ppd::cache
