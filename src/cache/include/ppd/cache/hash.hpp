// Content hashing for the solve-reuse layer: a streaming 64-bit FNV-1a
// hasher over exact byte representations. Keys built with it are content
// addresses: two circuits (or measurement requests) hash equal exactly when
// every ingested field is bit-identical, so a cache hit replays a solve of
// the *same* system and the reused result matches a cold run bit for bit.
//
// Doubles are hashed by bit pattern (never by formatted text), so values
// that differ below printing precision still key distinct entries. Every
// ingest method mixes a type tag byte first, so adjacent fields of
// different types cannot alias (str("ab") + str("c") != str("a") +
// str("bc"), and u64(0) != f64(0.0)).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace ppd::cache {

class Hasher {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  /// Raw bytes, no tag — building block for the typed ingests.
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state_ ^= static_cast<std::uint64_t>(p[i]);
      state_ *= kPrime;
    }
  }

  void u8(std::uint8_t v) {
    tag(1);
    bytes(&v, sizeof(v));
  }
  void u64(std::uint64_t v) {
    tag(2);
    bytes(&v, sizeof(v));
  }
  void i64(std::int64_t v) {
    tag(3);
    bytes(&v, sizeof(v));
  }
  /// Exact bit pattern: NaNs with different payloads hash differently,
  /// -0.0 != 0.0 — conservative (may split entries, never aliases them).
  void f64(double v) {
    tag(4);
    const auto bits = std::bit_cast<std::uint64_t>(v);
    bytes(&bits, sizeof(bits));
  }
  void boolean(bool v) {
    tag(5);
    const std::uint8_t b = v ? 1 : 0;
    bytes(&b, sizeof(b));
  }
  /// Length-prefixed, so concatenation cannot alias across field borders.
  void str(std::string_view s) {
    tag(6);
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void f64s(const std::vector<double>& vs) {
    tag(7);
    u64(vs.size());
    for (double v : vs) f64(v);
  }

  [[nodiscard]] std::uint64_t value() const { return state_; }

 private:
  void tag(std::uint8_t t) { bytes(&t, sizeof(t)); }

  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience for small keys.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view s) {
  Hasher h;
  h.str(s);
  return h.value();
}

}  // namespace ppd::cache
