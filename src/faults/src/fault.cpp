#include "ppd/faults/fault.hpp"

#include "ppd/util/error.hpp"

namespace ppd::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kInternalRopPullUp: return "internal-ROP-pullup";
    case FaultKind::kInternalRopPullDown: return "internal-ROP-pulldown";
    case FaultKind::kExternalRopOutput: return "external-ROP-output";
    case FaultKind::kExternalRopBranch: return "external-ROP-branch";
    case FaultKind::kBridge: return "bridge";
  }
  return "?";
}

void set_fault_resistance(cells::Netlist& netlist, const InjectedFault& fault,
                          double ohms) {
  netlist.circuit().resistor(fault.resistor).set_resistance(ohms);
}

InjectedFault inject_internal_rop(cells::Netlist& netlist, cells::GateId g,
                                  bool pull_up, double ohms) {
  const cells::GateInst& inst = netlist.gate(g);
  const auto& rail_refs = pull_up ? inst.pu_rail : inst.pd_rail;
  PPD_REQUIRE(!rail_refs.empty(), "gate has no rail terminals to break");
  spice::Circuit& ckt = netlist.circuit();
  const spice::NodeId rail = pull_up ? netlist.vdd() : spice::kGround;
  const spice::NodeId split = ckt.new_node(inst.name + ".rop");
  for (const auto& ref : rail_refs) ckt.device(ref.device).rewire(ref.terminal, split);
  InjectedFault f;
  f.kind = pull_up ? FaultKind::kInternalRopPullUp : FaultKind::kInternalRopPullDown;
  f.spliced_node = split;
  f.resistor = ckt.add_resistor("Rrop." + inst.name, split, rail, ohms);
  return f;
}

InjectedFault inject_external_rop_output(cells::Netlist& netlist, cells::GateId g,
                                         double ohms) {
  const cells::GateInst& inst = netlist.gate(g);
  PPD_REQUIRE(!inst.output_drains.empty(), "gate has no output drivers");
  spice::Circuit& ckt = netlist.circuit();
  const spice::NodeId split = ckt.new_node(inst.name + ".drv");
  for (const auto& ref : inst.output_drains)
    ckt.device(ref.device).rewire(ref.terminal, split);
  for (const auto& ref : inst.output_caps)
    ckt.device(ref.device).rewire(ref.terminal, split);
  InjectedFault f;
  f.kind = FaultKind::kExternalRopOutput;
  f.spliced_node = split;
  f.resistor = ckt.add_resistor("Rrop." + inst.name, split, inst.output, ohms);
  return f;
}

InjectedFault inject_external_rop_branch(cells::Netlist& netlist,
                                         cells::GateId driver, cells::GateId load,
                                         std::size_t load_input, double ohms) {
  const cells::GateInst& drv = netlist.gate(driver);
  const cells::GateInst& ld = netlist.gate(load);
  PPD_REQUIRE(load_input < ld.inputs.size(), "load input index out of range");
  PPD_REQUIRE(ld.inputs[load_input] == drv.output,
              "load input is not connected to the driver output");
  spice::Circuit& ckt = netlist.circuit();
  const spice::NodeId split = ckt.new_node(drv.name + "." + ld.name + ".br");
  cells::GateInst& ld_mut = netlist.gate_mutable(load);
  for (const auto& ref : ld_mut.input_pins[load_input])
    ckt.device(ref.device).rewire(ref.terminal, split);
  for (const auto& ref : ld_mut.input_caps[load_input])
    ckt.device(ref.device).rewire(ref.terminal, split);
  ld_mut.inputs[load_input] = split;
  InjectedFault f;
  f.kind = FaultKind::kExternalRopBranch;
  f.spliced_node = split;
  f.resistor =
      ckt.add_resistor("Rrop." + drv.name + "." + ld.name, drv.output, split, ohms);
  return f;
}

InjectedFault inject_bridge(cells::Netlist& netlist, cells::GateId a,
                            cells::GateId b, double ohms) {
  const cells::GateInst& ga = netlist.gate(a);
  const cells::GateInst& gb = netlist.gate(b);
  PPD_REQUIRE(ga.output != gb.output, "cannot bridge a node with itself");
  spice::Circuit& ckt = netlist.circuit();
  InjectedFault f;
  f.kind = FaultKind::kBridge;
  f.spliced_node = gb.output;
  f.resistor =
      ckt.add_resistor("Rbr." + ga.name + "." + gb.name, ga.output, gb.output, ohms);
  return f;
}

InjectedFault inject_on_path(cells::Path& path, const PathFaultSpec& spec,
                             double ohms) {
  PPD_REQUIRE(spec.stage < path.length(), "fault stage beyond path length");
  cells::Netlist& nl = path.netlist();
  const cells::GateId g = path.stages()[spec.stage];

  switch (spec.kind) {
    case FaultKind::kInternalRopPullUp:
      return inject_internal_rop(nl, g, /*pull_up=*/true, ohms);
    case FaultKind::kInternalRopPullDown:
      return inject_internal_rop(nl, g, /*pull_up=*/false, ohms);
    case FaultKind::kExternalRopOutput:
      return inject_external_rop_output(nl, g, ohms);
    case FaultKind::kExternalRopBranch: {
      PPD_REQUIRE(spec.stage + 1 < path.length(),
                  "branch ROP needs a downstream on-path gate");
      const cells::GateId load = path.stages()[spec.stage + 1];
      return inject_external_rop_branch(nl, g, load, 0, ohms);
    }
    case FaultKind::kBridge: {
      // Aggressor inverter with a steady output at the requested level:
      // input tied low -> output high, input tied high -> output low.
      const spice::NodeId tie =
          spec.aggressor_high ? nl.tie_low() : nl.tie_high();
      const cells::GateInst& victim = nl.gate(g);
      const cells::GateId agg = nl.add_gate(cells::GateKind::kInv,
                                            victim.name + ".agg", {tie},
                                            victim.name + ".aggo");
      return inject_bridge(nl, g, agg, ohms);
    }
  }
  throw PreconditionError("unknown fault kind");
}

}  // namespace ppd::faults
