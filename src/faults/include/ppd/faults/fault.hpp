// Fault models of the paper (Sect. 2) and their injection into a built
// transistor-level netlist:
//
//  * internal ROP  — series resistance inside a gate's pull-up or pull-down
//    network (Fig. 1a): slows exactly one output transition, so a pulse
//    shrinks at the faulty gate and dies within a few logic levels.
//  * external ROP  — series resistance on the gate output or on one fan-out
//    branch (Fig. 1b): slows both transitions; a pulse survives unless its
//    width is comparable to the degraded transition time.
//  * resistive bridge — resistor between two signal nets (Fig. 4); above the
//    critical resistance it produces extra delay on one transition only.
//
// Injection works by node splitting: rewire the recorded terminal groups of
// the target gate to a fresh node and splice the defect resistor in between.
// The returned handle exposes the resistor so R can be swept in place.
#pragma once

#include <string>

#include "ppd/cells/netlist.hpp"
#include "ppd/cells/path.hpp"

namespace ppd::faults {

enum class FaultKind {
  kInternalRopPullUp,
  kInternalRopPullDown,
  kExternalRopOutput,
  kExternalRopBranch,
  kBridge,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Handle to an injected defect.
struct InjectedFault {
  FaultKind kind = FaultKind::kExternalRopOutput;
  spice::DeviceId resistor = 0;   ///< the defect resistance
  spice::NodeId spliced_node = spice::kGround;  ///< the node created by splitting
};

/// Update the defect resistance in place (cheap R sweeps).
void set_fault_resistance(cells::Netlist& netlist, const InjectedFault& fault,
                          double ohms);

/// Internal ROP: series R between gate `g`'s pull-down (or pull-up) network
/// and its rail.
[[nodiscard]] InjectedFault inject_internal_rop(cells::Netlist& netlist,
                                                cells::GateId g, bool pull_up,
                                                double ohms);

/// External ROP on the gate output: driver drains -> R -> every load.
[[nodiscard]] InjectedFault inject_external_rop_output(cells::Netlist& netlist,
                                                       cells::GateId g,
                                                       double ohms);

/// External ROP on one fan-out branch: R between driver output and input
/// `load_input` of `load` only (other branches unaffected).
[[nodiscard]] InjectedFault inject_external_rop_branch(cells::Netlist& netlist,
                                                       cells::GateId driver,
                                                       cells::GateId load,
                                                       std::size_t load_input,
                                                       double ohms);

/// Resistive bridge between the outputs of gates `a` and `b`.
[[nodiscard]] InjectedFault inject_bridge(cells::Netlist& netlist, cells::GateId a,
                                          cells::GateId b, double ohms);

/// Fault specification relative to a built Path (the experiments' workload).
struct PathFaultSpec {
  FaultKind kind = FaultKind::kExternalRopOutput;
  /// Gate index along the path (0-based). The paper's experiments put the
  /// fault at the output of the second gate, i.e. stage = 1.
  std::size_t stage = 1;
  /// Bridge only: steady logic level of the aggressor net.
  bool aggressor_high = false;
};

/// Inject `spec` into `path`. For a branch ROP the affected branch is the
/// one continuing along the path (the Fig. 1b / Fig. 3 situation); for a
/// bridge an aggressor inverter with a steady output is created and bridged
/// to the stage output (the Fig. 4 situation).
[[nodiscard]] InjectedFault inject_on_path(cells::Path& path,
                                           const PathFaultSpec& spec, double ohms);

}  // namespace ppd::faults
