#include "ppd/net/chaos.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "ppd/obs/log.hpp"
#include "ppd/util/error.hpp"

namespace ppd::net {

namespace {

using resil::FaultSite;
using resil::fault_uniform;

constexpr std::size_t kChunk = 4096;

/// Arm an RST-on-close: SO_LINGER with zero timeout makes close() send a
/// reset instead of a FIN, which is the rudest way a peer can vanish.
void arm_reset(int fd) {
  if (fd < 0) return;
  struct linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  PPD_REQUIRE(!started_.load(), "ChaosProxy::start called twice");
  PPD_REQUIRE(options_.upstream_port != 0,
              "ChaosProxy needs an upstream port");
  listener_ = std::make_unique<TcpListener>(options_.listen_port);
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint16_t ChaosProxy::port() const {
  PPD_REQUIRE(listener_ != nullptr, "ChaosProxy::port before start()");
  return listener_->port();
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.forwarded_bytes = forwarded_bytes_.load(std::memory_order_relaxed);
  s.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  s.resets = resets_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.delays = delays_.load(std::memory_order_relaxed);
  return s;
}

void ChaosProxy::accept_loop() {
  for (;;) {
    auto accepted = listener_->accept();
    if (!accepted) return;
    TcpStream upstream;
    try {
      upstream = TcpStream::connect_loopback(options_.upstream_port);
    } catch (const NetError& e) {
      // Upstream down: drop the client (it sees EOF) and keep listening —
      // that is itself a fault worth surviving.
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    reap_finished_locked();
    const std::uint64_t conn_id = ++next_conn_;
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->client = std::move(*accepted);
    raw->upstream = std::move(upstream);
    conns_.push_back(std::move(conn));
    raw->up = std::thread([this, raw, conn_id] {
      pump(raw, &raw->client, &raw->upstream, conn_id, 0);
    });
    raw->down = std::thread([this, raw, conn_id] {
      pump(raw, &raw->upstream, &raw->client, conn_id, 1);
    });
  }
}

void ChaosProxy::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->up.joinable()) (*it)->up.join();
      if ((*it)->down.joinable()) (*it)->down.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosProxy::chaos_sleep(double seconds) {
  // Sleep in slices so stop() is never held hostage by a long stall.
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (!stopping_.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

void ChaosProxy::pump(Conn* conn, TcpStream* src, TcpStream* dst,
                      std::uint64_t conn_id, std::uint64_t direction) {
  const resil::FaultPlan& plan = options_.plan;
  // The draw key folds the direction into the item, so the two pumps of a
  // connection see independent (but each fully deterministic) streams.
  const std::uint64_t item = conn_id * 2 + direction;
  std::uint64_t draw = 0;
  char buf[kChunk];
  bool reset = false;
  for (;;) {
    const ssize_t n = ::recv(src->fd(), buf, sizeof(buf), 0);
    if (n == 0) break;  // EOF: half-close downstream, drain the other pump
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // ECONNRESET & friends: treat as EOF
    }
    ++draw;
    try {
      if (plan.p_sock_reset > 0.0 &&
          fault_uniform(plan.seed, item,
                        static_cast<std::uint64_t>(FaultSite::kSockReset),
                        draw) < plan.p_sock_reset) {
        // RST both sides mid-frame. Nothing of this chunk is forwarded.
        resets_.fetch_add(1, std::memory_order_relaxed);
        reset = true;
        break;
      }
      if (plan.p_sock_stall > 0.0 &&
          fault_uniform(plan.seed, item,
                        static_cast<std::uint64_t>(FaultSite::kSockStall),
                        draw) < plan.p_sock_stall) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        chaos_sleep(plan.sock_stall_seconds);
      }
      if (plan.p_sock_delay > 0.0 &&
          fault_uniform(plan.seed, item,
                        static_cast<std::uint64_t>(FaultSite::kSockDelay),
                        draw) < plan.p_sock_delay) {
        delays_.fetch_add(1, std::memory_order_relaxed);
        chaos_sleep(plan.sock_delay_seconds);
      }
      if (plan.p_sock_partial > 0.0 &&
          fault_uniform(plan.seed, item,
                        static_cast<std::uint64_t>(FaultSite::kSockPartial),
                        draw) < plan.p_sock_partial) {
        // Dribble: 1..8-byte writes, size drawn from the same pure hash.
        partial_writes_.fetch_add(1, std::memory_order_relaxed);
        std::size_t off = 0;
        std::uint64_t sub = 0;
        while (off < static_cast<std::size_t>(n)) {
          const double u = fault_uniform(
              plan.seed, item,
              static_cast<std::uint64_t>(FaultSite::kSockPartial),
              (draw << 20) + ++sub);
          const std::size_t piece = std::min<std::size_t>(
              1 + static_cast<std::size_t>(u * 8.0),
              static_cast<std::size_t>(n) - off);
          dst->write_all(std::string_view(buf + off, piece));
          off += piece;
        }
      } else {
        dst->write_all(std::string_view(buf, static_cast<std::size_t>(n)));
      }
      forwarded_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
    } catch (const NetError&) {
      break;  // downstream gone: stop pumping this direction
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
  }
  if (reset) {
    arm_reset(conn->client.fd());
    arm_reset(conn->upstream.fd());
    conn->client.shutdown_both();
    conn->upstream.shutdown_both();
  } else {
    // Propagate the half-close so line-based peers see a clean EOF.
    if (dst->fd() >= 0) ::shutdown(dst->fd(), SHUT_WR);
    if (src->fd() >= 0) ::shutdown(src->fd(), SHUT_RD);
  }
  if (conn->open_pumps.fetch_sub(1, std::memory_order_acq_rel) == 1)
    conn->done.store(true, std::memory_order_release);
}

void ChaosProxy::stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) {
    // Second caller (destructor after explicit stop): just make sure the
    // accept thread is gone.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto& conn : conns_) {
    conn->client.shutdown_both();
    conn->upstream.shutdown_both();
  }
  for (auto& conn : conns_) {
    if (conn->up.joinable()) conn->up.join();
    if (conn->down.joinable()) conn->down.join();
  }
  conns_.clear();
}

}  // namespace ppd::net
