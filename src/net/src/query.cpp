#include "ppd/net/query.hpp"

#include <fstream>
#include <sstream>

#include "ppd/core/coverage.hpp"
#include "ppd/core/rmin.hpp"
#include "ppd/lint/bench_lint.hpp"
#include "ppd/lint/spice_lint.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/sta/interval_sta.hpp"
#include "ppd/sta/lint.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"
#include "ppd/util/table.hpp"

namespace ppd::net {

namespace {

cells::GateKind gate_kind_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "inv")) return cells::GateKind::kInv;
  if (iequals(s, "nand2")) return cells::GateKind::kNand2;
  if (iequals(s, "nand3")) return cells::GateKind::kNand3;
  if (iequals(s, "nor2")) return cells::GateKind::kNor2;
  if (iequals(s, "nor3")) return cells::GateKind::kNor3;
  if (iequals(s, "aoi21")) return cells::GateKind::kAoi21;
  if (iequals(s, "oai21")) return cells::GateKind::kOai21;
  throw ParseError("unknown gate kind: " + s +
                   " (use inv|nand2|nand3|nor2|nor3|aoi21|oai21)");
}

faults::FaultKind fault_kind_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "external")) return faults::FaultKind::kExternalRopOutput;
  if (iequals(s, "branch")) return faults::FaultKind::kExternalRopBranch;
  if (iequals(s, "internal-up")) return faults::FaultKind::kInternalRopPullUp;
  if (iequals(s, "internal-down"))
    return faults::FaultKind::kInternalRopPullDown;
  if (iequals(s, "bridge")) return faults::FaultKind::kBridge;
  throw ParseError("unknown fault kind: " + s +
                   " (use external|branch|internal-up|internal-down|bridge)");
}

std::vector<cells::GateKind> gates_from_spec(const std::string& spec) {
  if (spec.empty()) return cells::seven_gate_path().kinds;
  std::vector<cells::GateKind> kinds;
  for (const auto& tok : util::split(spec, ','))
    kinds.push_back(gate_kind_from_string(std::string(util::trim(tok))));
  return kinds;
}

core::PathFactory factory_from(const QueryParams& p, bool with_fault) {
  core::PathFactory f;
  f.options.kinds = gates_from_spec(p.gates);
  if (with_fault) {
    faults::PathFaultSpec spec;
    spec.kind = fault_kind_from_string(p.fault);
    spec.stage = p.stage;
    f.fault = spec;
  }
  return f;
}

void emit(std::ostream& os, const util::Table& t, bool csv) {
  if (csv)
    os << t.to_csv();
  else
    t.print(os);
}

// ---------------------------------------------------------------------------
// Parameter building. One key table per kind keeps ppdtool's allow-lists and
// the session SET validation in lock-step.
// ---------------------------------------------------------------------------

double to_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    throw ParseError("option --" + key + " expects a number, got: " + value);
  return v;
}

struct Lookup {
  const ParamLookup& raw;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const {
    const auto v = raw(key);
    return v ? *v : def;
  }
  [[nodiscard]] double get(const std::string& key, double def) const {
    const auto v = raw(key);
    return v ? to_double(key, *v) : def;
  }
  [[nodiscard]] int get(const std::string& key, int def) const {
    return static_cast<int>(get(key, static_cast<double>(def)));
  }
  [[nodiscard]] bool has(const std::string& key) const {
    // Presence-style flags (--csv, --strict): the Cli adapter yields "1"
    // for a bare flag; sessions SET an explicit 0/1. "0" counts as unset so
    // `SET csv 0` can undo an earlier `SET csv 1`.
    const auto v = raw(key);
    return v && *v != "0";
  }
};

}  // namespace

QueryKind query_kind_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "transfer")) return QueryKind::kTransfer;
  if (iequals(s, "calibrate")) return QueryKind::kCalibrate;
  if (iequals(s, "coverage")) return QueryKind::kCoverage;
  if (iequals(s, "rmin")) return QueryKind::kRmin;
  if (iequals(s, "lint")) return QueryKind::kLint;
  if (iequals(s, "sta")) return QueryKind::kSta;
  throw ParseError("unknown query kind: " + s +
                   " (use transfer|calibrate|coverage|rmin|lint|sta)");
}

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTransfer: return "transfer";
    case QueryKind::kCalibrate: return "calibrate";
    case QueryKind::kCoverage: return "coverage";
    case QueryKind::kRmin: return "rmin";
    case QueryKind::kLint: return "lint";
    case QueryKind::kSta: return "sta";
  }
  return "?";
}

const std::vector<std::string>& query_keys(QueryKind kind) {
  static const std::vector<std::string> transfer{"gates", "w-lo", "w-hi",
                                                 "points", "csv"};
  static const std::vector<std::string> calibrate{
      "gates", "fault", "stage", "samples", "sigma", "seed", "csv"};
  static const std::vector<std::string> coverage{
      "gates",        "fault",        "stage",      "method",
      "samples",      "sigma",        "seed",       "r-lo",
      "r-hi",         "points",       "csv",        "strict",
      "solve-budget", "sweep-budget", "checkpoint", "resume",
      "fault-plan",   "quarantine-json", "threads",    "batch"};
  static const std::vector<std::string> rmin{
      "gates",  "fault", "stage",           "samples", "sigma",
      "seed",   "r-lo",  "r-hi",            "steps",   "target-coverage",
      "strict", "csv",   "solve-budget",    "threads", "batch"};
  static const std::vector<std::string> lint{"json", "min-severity",
                                             "suppress"};
  static const std::vector<std::string> sta{
      "bench",  "clock",      "k",          "w-in-max", "w-th-floor",
      "margin", "slack-frac", "suppress",   "json",     "csv",
      "threads"};
  switch (kind) {
    case QueryKind::kTransfer: return transfer;
    case QueryKind::kCalibrate: return calibrate;
    case QueryKind::kCoverage: return coverage;
    case QueryKind::kRmin: return rmin;
    case QueryKind::kLint: return lint;
    case QueryKind::kSta: return sta;
  }
  return transfer;
}

QueryParams params_from_lookup(QueryKind kind, const ParamLookup& lookup) {
  const Lookup kv{lookup};
  QueryParams p;
  p.gates = kv.get("gates", std::string());
  p.fault = kv.get("fault", std::string("external"));
  p.stage = static_cast<std::size_t>(kv.get("stage", 1));
  p.seed = static_cast<std::uint64_t>(kv.get("seed", 2007));
  p.sigma = kv.get("sigma", 0.05);
  p.csv = kv.has("csv");
  p.threads = kv.get("threads", 1);
  switch (kind) {
    case QueryKind::kTransfer:
      p.w_lo = kv.get("w-lo", 0.08e-9);
      p.w_hi = kv.get("w-hi", 0.8e-9);
      p.points = static_cast<std::size_t>(kv.get("points", 15));
      break;
    case QueryKind::kCalibrate:
      p.samples = kv.get("samples", 30);
      break;
    case QueryKind::kCoverage:
      p.method = kv.get("method", std::string("pulse"));
      p.samples = kv.get("samples", 25);
      p.r_lo = kv.get("r-lo", 1e3);
      p.r_hi = kv.get("r-hi", 64e3);
      p.points = static_cast<std::size_t>(kv.get("points", 9));
      p.strict = kv.has("strict");
      p.solve_budget = kv.get("solve-budget", 0.0);
      p.sweep_budget = kv.get("sweep-budget", 0.0);
      p.checkpoint = kv.get("checkpoint", std::string());
      if (const auto resume = lookup("resume"); resume && !resume->empty()) {
        // --resume=FILE names the checkpoint to continue from.
        p.checkpoint = *resume;
        p.resume = true;
      }
      p.fault_plan = kv.get("fault-plan", std::string());
      p.quarantine_json = kv.get("quarantine-json", std::string());
      p.batch = kv.has("batch");
      break;
    case QueryKind::kRmin:
      p.samples = kv.get("samples", 20);
      p.rmin_lo = kv.get("r-lo", 100.0);
      p.rmin_hi = kv.get("r-hi", 100e3);
      p.bisection_steps = kv.get("steps", 10);
      p.target_coverage = kv.get("target-coverage", 1.0);
      p.strict = kv.has("strict");
      p.solve_budget = kv.get("solve-budget", 0.0);
      p.batch = kv.has("batch");
      break;
    case QueryKind::kLint:
      p.lint_json = kv.has("json");
      p.lint_min_severity = kv.get("min-severity", std::string());
      p.lint_suppress = kv.get("suppress", std::string());
      break;
    case QueryKind::kSta:
      p.bench = kv.get("bench", std::string());
      p.clock = kv.get("clock", 0.0);
      p.k_paths = static_cast<std::size_t>(kv.get("k", 5));
      p.w_in_max = kv.get("w-in-max", 1.2e-9);
      p.w_th_floor = kv.get("w-th-floor", 50e-12);
      p.margin = kv.get("margin", 0.25);
      p.slack_frac = kv.get("slack-frac", 0.25);
      p.lint_json = kv.has("json");
      p.lint_suppress = kv.get("suppress", std::string());
      break;
  }
  return p;
}

QueryParams params_from_cli(QueryKind kind, const util::Cli& cli) {
  return params_from_lookup(kind,
                            [&cli](const std::string& key)
                                -> std::optional<std::string> {
                              if (!cli.has(key)) return std::nullopt;
                              return cli.get(key, std::string());
                            });
}

namespace {

QueryResult run_transfer(const QueryParams& p) {
  core::PathFactory f = factory_from(p, /*with_fault=*/false);
  const auto grid = core::linspace(p.w_lo, p.w_hi, p.points);
  core::PathInstance inst = core::make_instance(f, 0.0, nullptr);
  const auto curve =
      core::transfer_function(inst.path, core::PulseKind::kH, grid, {});
  util::Table t({"w_in_s", "w_out_s"});
  for (std::size_t i = 0; i < curve.w_in.size(); ++i)
    t.add_numeric_row({curve.w_in[i], curve.w_out[i]}, 5);
  std::ostringstream os;
  emit(os, t, p.csv);
  return {os.str(), 0};
}

QueryResult run_calibrate(const QueryParams& p) {
  core::PathFactory f = factory_from(p, /*with_fault=*/true);
  const auto model = mc::VariationModel::uniform_sigma(p.sigma);

  core::DelayCalibrationOptions dopt;
  dopt.samples = p.samples;
  dopt.seed = p.seed;
  dopt.variation = model;
  const auto dcal = core::calibrate_delay_test(f, dopt);
  core::PulseCalibrationOptions popt;
  popt.samples = p.samples;
  popt.seed = p.seed;
  popt.variation = model;
  const auto pcal = core::calibrate_pulse_test(f, popt);

  util::Table t({"parameter", "value_s"});
  t.add_row({"delay_T0", util::format_double(dcal.t_nominal, 6)});
  t.add_row({"worst_fault_free_delay",
             util::format_double(dcal.worst_fault_free_delay, 6)});
  t.add_row({"pulse_w_in", util::format_double(pcal.w_in, 6)});
  t.add_row({"pulse_w_th", util::format_double(pcal.w_th, 6)});
  t.add_row({"min_fault_free_w_out",
             util::format_double(pcal.min_fault_free_w_out, 6)});
  std::ostringstream os;
  emit(os, t, p.csv);
  return {os.str(), 0};
}

QueryResult run_coverage(const QueryParams& p) {
  core::PathFactory f = factory_from(p, /*with_fault=*/true);

  core::CoverageOptions copt;
  copt.samples = p.samples;
  copt.seed = p.seed;
  copt.variation = mc::VariationModel::uniform_sigma(p.sigma);
  copt.resistances = core::logspace(p.r_lo, p.r_hi, p.points);
  copt.threads = p.threads;
  copt.batch = p.batch;
  copt.cancel = p.cancel;

  // Served sweeps default to quarantine mode, exactly like the CLI — a long
  // sweep should report its broken samples, not die on one of them; strict
  // restores the library's fail-fast default.
  copt.resil.quarantine = !p.strict;
  copt.resil.solve_budget_seconds = p.solve_budget;
  copt.resil.sweep_budget_seconds = p.sweep_budget;
  copt.resil.checkpoint_path = p.checkpoint;
  copt.resil.resume = p.resume;
  copt.resil.faults = p.fault_plan.empty()
                          ? resil::FaultPlan::from_env()
                          : resil::FaultPlan::parse(p.fault_plan);

  core::CoverageResult res;
  if (util::iequals(p.method, "delay")) {
    core::DelayCalibrationOptions dopt;
    dopt.samples = copt.samples;
    dopt.seed = copt.seed;
    dopt.variation = copt.variation;
    res = core::run_delay_coverage(f, core::calibrate_delay_test(f, dopt), copt);
  } else if (util::iequals(p.method, "pulse")) {
    core::PulseCalibrationOptions popt;
    popt.samples = copt.samples;
    popt.seed = copt.seed;
    popt.variation = copt.variation;
    res = core::run_pulse_coverage(f, core::calibrate_pulse_test(f, popt), copt);
  } else {
    throw ParseError("unknown method: " + p.method + " (use pulse|delay)");
  }

  util::Table t({"R_ohm", "x0.9", "x1.0", "x1.1"});
  for (std::size_t r = 0; r < res.resistances.size(); ++r)
    t.add_numeric_row({res.resistances[r], res.coverage[0][r],
                       res.coverage[1][r], res.coverage[2][r]},
                      4);
  std::ostringstream os;
  emit(os, t, p.csv);
  os << "# " << res.simulations << " electrical transients\n";
  if (copt.resil.quarantine)
    os << "# n_quarantined = " << res.n_quarantined() << " of "
       << res.quarantine.items << " samples\n";
  if (!p.quarantine_json.empty()) {
    std::ofstream qos(p.quarantine_json);
    if (!qos)
      throw ParseError("cannot open " + p.quarantine_json + " for writing");
    res.quarantine.write_json(qos);
  }
  return {os.str(), 0};
}

QueryResult run_rmin(const QueryParams& p) {
  core::PathFactory f = factory_from(p, /*with_fault=*/true);
  const auto model = mc::VariationModel::uniform_sigma(p.sigma);

  core::PulseCalibrationOptions popt;
  popt.samples = p.samples;
  popt.seed = p.seed;
  popt.variation = model;
  const auto cal = core::calibrate_pulse_test(f, popt);

  core::RminOptions ropt;
  ropt.samples = p.samples;
  ropt.seed = p.seed;
  ropt.variation = model;
  ropt.r_lo = p.rmin_lo;
  ropt.r_hi = p.rmin_hi;
  ropt.bisection_steps = p.bisection_steps;
  ropt.target_coverage = p.target_coverage;
  ropt.threads = p.threads;
  ropt.batch = p.batch;
  ropt.cancel = p.cancel;
  ropt.resil.quarantine = !p.strict;
  ropt.resil.solve_budget_seconds = p.solve_budget;
  const auto res = core::find_r_min(f, cal, ropt);

  util::Table t({"parameter", "value"});
  t.add_row({"detectable", res.detectable ? "1" : "0"});
  t.add_row({"r_min_ohm",
             res.detectable ? util::format_double(res.r_min, 6) : "inf"});
  t.add_row({"pulse_w_in_s", util::format_double(cal.w_in, 6)});
  t.add_row({"pulse_w_th_s", util::format_double(cal.w_th, 6)});
  t.add_row({"simulations", std::to_string(res.simulations)});
  t.add_row({"n_quarantined", std::to_string(res.n_quarantined)});
  std::ostringstream os;
  emit(os, t, p.csv);
  return {os.str(), 0};
}

bool has_ext(const std::string& name, const char* ext) {
  const auto dot = name.rfind('.');
  return dot != std::string::npos &&
         util::iequals(std::string_view(name).substr(dot), ext);
}

QueryResult run_lint(const QueryParams& p) {
  lint::Report report;
  if (has_ext(p.lint_name, ".bench"))
    report = lint::lint_bench_text(p.lint_text, p.lint_name);
  else if (has_ext(p.lint_name, ".sp") || has_ext(p.lint_name, ".cir") ||
           has_ext(p.lint_name, ".spice"))
    report = lint::lint_spice_deck_text(p.lint_text, p.lint_name);
  else
    throw ParseError("cannot infer input language of '" + p.lint_name +
                     "' (expected .bench or .sp/.cir/.spice)");

  lint::LintOptions filter;
  if (!p.lint_min_severity.empty())
    filter.min_severity = lint::severity_from_string(p.lint_min_severity);
  // Unknown/malformed codes are hard errors, not silently dead filters.
  filter.suppress = lint::parse_suppress_list(p.lint_suppress);

  const lint::Report shown = report.filtered(filter);
  std::ostringstream os;
  if (p.lint_json)
    lint::write_json(os, shown);
  else
    lint::write_text(os, shown);
  return {os.str(), shown.has_errors() ? 1 : 0};
}

std::string base_name(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

QueryResult run_sta(const QueryParams& p) {
  // Load order: uploaded blob (ppdd), local file (ppdtool), bundled
  // synthetic benchmark. The source is normalized to the base name so a
  // served run over an uploaded netlist is byte-identical to the local
  // run over the same file.
  logic::Netlist nl;
  if (!p.bench_text.empty()) {
    lint::LintOptions errors_only;
    errors_only.min_severity = lint::Severity::kError;
    lint::lint_bench_text(p.bench_text, p.bench_name)
        .filtered(errors_only)
        .throw_on_error(p.bench_name);
    nl = logic::parse_bench(p.bench_text);
    nl.set_source(base_name(p.bench_name));
  } else if (!p.bench.empty()) {
    nl = logic::load_bench_file(p.bench);
    nl.set_source(base_name(p.bench));
  } else {
    nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
    nl.set_source("<synthetic-c432>");
  }
  const auto lib = logic::GateTimingLibrary::generic();

  const sta::IntervalStaResult ista = sta::run_interval_sta(nl, lib, p.clock);
  sta::SlackiestOptions sopt;
  sopt.clock_period = p.clock;
  const auto slackiest = sta::k_slackiest_paths(nl, lib, p.k_paths, sopt);

  sta::StaLintOptions lopt;
  lopt.clock_period = p.clock;
  lopt.survival.w_in_max = p.w_in_max;
  lopt.survival.w_th_floor = p.w_th_floor;
  lopt.survival.margin = p.margin;
  lopt.slack_frac = p.slack_frac;
  const lint::Report report = lint_sta(nl, lib, lopt);
  lint::LintOptions filter;
  filter.suppress = lint::parse_suppress_list(p.lint_suppress);
  const lint::Report shown = report.filtered(filter);

  const auto survival = sta::compute_survival(nl, lib, lopt.survival);
  std::size_t sites = 0;
  std::size_t dead_sites = 0;
  for (logic::NetId id = 0; id < nl.size(); ++id) {
    if (nl.gate(id).kind == logic::LogicKind::kInput) continue;
    ++sites;
    if (survival.dead(id)) ++dead_sites;
  }

  const auto path_string = [&nl](const logic::Path& path) {
    std::string s;
    for (logic::NetId n : path.nets) {
      if (!s.empty()) s += '>';
      s += nl.gate(n).name;
    }
    return s;
  };

  std::ostringstream os;
  if (p.lint_json) {
    os << "{\"netlist\":{\"name\":\"" << nl.source() << "\",\"gates\":"
       << nl.gate_count() << ",\"depth\":" << nl.depth()
       << ",\"inputs\":" << nl.inputs().size()
       << ",\"outputs\":" << nl.outputs().size() << "}"
       << ",\"timing\":{\"critical_delay_s\":"
       << util::format_double(ista.critical_delay, 6)
       << ",\"clock_period_s\":" << util::format_double(ista.clock_period, 6)
       << "},\"slackiest_paths\":[";
    for (std::size_t i = 0; i < slackiest.size(); ++i) {
      if (i) os << ',';
      os << "{\"rank\":" << i << ",\"delay_s\":"
         << util::format_double(slackiest[i].delay, 6)
         << ",\"slack_s\":" << util::format_double(slackiest[i].slack, 6)
         << ",\"length\":" << slackiest[i].path.length() << ",\"path\":\""
         << path_string(slackiest[i].path) << "\"}";
    }
    os << "],\"survival\":{\"w_in_max_s\":"
       << util::format_double(p.w_in_max, 6)
       << ",\"w_th_floor_s\":" << util::format_double(p.w_th_floor, 6)
       << ",\"margin\":" << util::format_double(p.margin, 6)
       << ",\"sites\":" << sites << ",\"pulse_dead_sites\":" << dead_sites
       << "},\"lint\":";
    std::string lint_json_s = lint::to_json(shown);
    while (!lint_json_s.empty() && lint_json_s.back() == '\n')
      lint_json_s.pop_back();
    os << lint_json_s << "}\n";
    return {os.str(), shown.has_errors() ? 1 : 0};
  }

  os << "# " << nl.source() << ": " << nl.gate_count() << " gates, depth "
     << nl.depth() << ", critical delay "
     << util::format_double(ista.critical_delay, 5) << " s, clock "
     << util::format_double(ista.clock_period, 5) << " s\n";
  os << "# survival: " << dead_sites << " of " << sites
     << " sites statically pulse-dead (w_in_max "
     << util::format_double(p.w_in_max, 4) << " s, w_th_floor "
     << util::format_double(p.w_th_floor, 4) << " s, margin "
     << util::format_double(p.margin, 3) << ")\n";
  util::Table paths_t({"rank", "delay_s", "slack_s", "len", "path"});
  for (std::size_t i = 0; i < slackiest.size(); ++i)
    paths_t.add_row({std::to_string(i),
                     util::format_double(slackiest[i].delay, 5),
                     util::format_double(slackiest[i].slack, 5),
                     std::to_string(slackiest[i].path.length()),
                     path_string(slackiest[i].path)});
  emit(os, paths_t, p.csv);
  util::Table slack_t({"slack_at_least_frac", "gates"});
  for (double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::size_t n_sites = 0;
    for (logic::NetId id = 0; id < nl.size(); ++id) {
      if (nl.gate(id).kind == logic::LogicKind::kInput) continue;
      if (ista.slack[id].lo >= frac * ista.clock_period) ++n_sites;
    }
    slack_t.add_row({util::format_double(frac, 3), std::to_string(n_sites)});
  }
  emit(os, slack_t, p.csv);
  if (!shown.empty()) lint::write_text(os, shown);
  return {os.str(), shown.has_errors() ? 1 : 0};
}

}  // namespace

QueryResult run_query(QueryKind kind, const QueryParams& params) {
  switch (kind) {
    case QueryKind::kTransfer: return run_transfer(params);
    case QueryKind::kCalibrate: return run_calibrate(params);
    case QueryKind::kCoverage: return run_coverage(params);
    case QueryKind::kRmin: return run_rmin(params);
    case QueryKind::kLint: return run_lint(params);
    case QueryKind::kSta: return run_sta(params);
  }
  throw PreconditionError("unhandled query kind");
}

}  // namespace ppd::net
