#include "ppd/net/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/exec/thread_pool.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::net {

namespace {

obs::Counter& queries_counter(const char* leaf) {
  return obs::counter(std::string("net.queries.") + leaf);
}

obs::Counter& quota_counter(const std::string& leaf) {
  return obs::counter("net.quota." + leaf);
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Latency spec shared by the queue/execute/serialize histograms: 1 µs to
/// 1000 s, 36 log bins (~6 bins per decade).
constexpr obs::HistogramSpec kLatencySpec{1e-6, 1e3, 36};

/// SUBSCRIBE periods are clamped up to this so a client cannot turn the
/// pusher into a busy loop.
constexpr double kMinSubscribePeriod = 0.05;

/// Shed priority: the cheapest interactive kinds are refused last, the
/// heavy sweep kinds first. Deterministic per kind, so the shed decision
/// depends only on the in-flight count at arrival.
int kind_priority(QueryKind kind) {
  switch (kind) {
    case QueryKind::kCoverage:
    case QueryKind::kRmin:
      return 0;  // heavy MC sweeps: shed first
    case QueryKind::kCalibrate:
      return 1;
    default:
      return 2;  // transfer / lint / sta: cheap, keep serving
  }
}

/// Build the result event line. The serialize cost (JSON-escaping the body
/// is the expensive part) is measured first and embedded in the same
/// event, so the head is formatted after the tail.
std::string result_event(std::uint64_t id, std::uint64_t qid, const char* kind,
                         const char* status, int exit_code, double queue_s,
                         double execute_s, const std::string& body,
                         const std::string& error, double* serialize_s_out) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string tail;
  if (!body.empty()) tail += ",\"body\":" + json_quote(body);
  if (!error.empty()) tail += ",\"error\":" + json_quote(error);
  const double serialize_s =
      seconds_between(t0, std::chrono::steady_clock::now());
  if (serialize_s_out != nullptr) *serialize_s_out = serialize_s;
  // elapsed_s repeats execute_s: pre-breakdown consumers keyed on it.
  char head[288];
  std::snprintf(head, sizeof(head),
                "{\"event\":\"result\",\"id\":%llu,\"qid\":%llu,"
                "\"kind\":\"%s\",\"status\":\"%s\",\"exit_code\":%d,"
                "\"elapsed_s\":%.6f,\"queue_s\":%.6f,\"execute_s\":%.6f,"
                "\"serialize_s\":%.6f",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(qid), kind, status, exit_code,
                execute_s, queue_s, execute_s, serialize_s);
  std::string out = head;
  out += tail;
  out += "}";
  return out;
}

/// %.17g double for JSON (matches the metrics exporter's convention).
std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const obs::HistogramSnapshot* find_histogram(const obs::MetricsSnapshot& snap,
                                             const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::uint64_t find_counter(const obs::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

/// Strict non-negative integer parse for protocol option values: rejects
/// empty strings, signs, garbage tails and values that overflow — the
/// hostile-client hardening for every "<key>=<number>" the server accepts.
bool parse_wire_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Server::Server(ServerOptions options) : options_(options) {
  for (std::size_t k = 0; k < kind_metrics_.size(); ++k) {
    const std::string name = query_kind_name(static_cast<QueryKind>(k));
    KindMetrics& m = kind_metrics_[k];
    m.accepted = &kind_registry_.counter(name + ".accepted");
    m.ok = &kind_registry_.counter(name + ".ok");
    m.error = &kind_registry_.counter(name + ".error");
    m.cancelled = &kind_registry_.counter(name + ".cancelled");
    m.busy = &kind_registry_.counter(name + ".busy");
    m.expired = &kind_registry_.counter(name + ".expired");
    m.shed = &kind_registry_.counter(name + ".shed");
    m.queue_s = &kind_registry_.histogram(name + ".queue_s", kLatencySpec);
    m.execute_s = &kind_registry_.histogram(name + ".execute_s", kLatencySpec);
  }
  serialize_hist_ = &kind_registry_.histogram("serialize_s", kLatencySpec);
}

Server::~Server() { stop(); }

void Server::start() {
  PPD_REQUIRE(!started_.load(), "Server::start called twice");

  if (!options_.journal_path.empty()) {
    SessionJournal::State recovered;
    if (options_.recover)
      recovered = SessionJournal::replay(options_.journal_path);
    journal_ = std::make_unique<SessionJournal>(
        options_.journal_path, options_.journal_rotate_bytes, recovered);
    // Rebuild each journaled session as a detached, RESUMEable session.
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, rec] : recovered) {
      auto session = std::make_shared<Session>(token, options_.limits);
      for (const auto& [key, value] : rec.config) {
        try {
          session->set(key, value);
        } catch (const std::exception& e) {
          obs::log_warn("net", "journal: dropping config key on recovery",
                        {{"token", token}, {"key", key}, {"error", e.what()}});
        }
      }
      for (const auto& [name, text] : rec.uploads) {
        try {
          session->upload(name, text);
        } catch (const std::exception& e) {
          obs::log_warn("net", "journal: dropping upload on recovery",
                        {{"token", token}, {"name", name}, {"error", e.what()}});
        }
      }
      session->restore(rec.next_id, rec.acked);
      session->set_control_attached(false, ++next_detach_seq_);
      SessionJournal* journal = journal_.get();
      const std::string tok = token;
      session->set_ack_hook(
          [journal, tok](std::uint64_t id, const std::string& event) {
            journal->record_ack(tok, id, event);
          });
      sessions_[token] = session;
      // Keep fresh tokens ("s<N>") clear of recovered ones.
      if (token.size() > 1 && token[0] == 's') {
        const std::uint64_t n = std::strtoull(token.c_str() + 1, nullptr, 10);
        next_session_ = std::max(next_session_, n);
      }
      obs::log_info("net", "recovered session",
                    {{"token", token},
                     {"acked", std::to_string(rec.acked.size())},
                     {"unacked", std::to_string(rec.accepted.size())}});
    }
  }

  listener_ = std::make_unique<TcpListener>(options_.port);
  started_at_ = std::chrono::steady_clock::now();
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  push_thread_ = std::thread([this] { metrics_push_loop(); });
  obs::log_info("net", "ppdd listening",
                {{"port", std::to_string(listener_->port())}});
}

std::uint16_t Server::port() const {
  PPD_REQUIRE(listener_ != nullptr, "Server::port before start()");
  return listener_->port();
}

void Server::accept_loop() {
  for (;;) {
    auto accepted = listener_->accept();
    if (!accepted) return;  // listener closed: drain/stop
    auto stream = std::make_shared<TcpStream>(std::move(*accepted));
    // Every inbound line is length-capped from the first byte: an endless
    // line from a hostile client costs O(limit) memory, not O(sent bytes).
    stream->set_line_limit(options_.limits.max_line_bytes);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    reap_finished_connections_locked();
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->stream = stream;
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw, stream] {
      handle_connection(stream);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void Server::reap_finished_connections_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::handle_connection(const std::shared_ptr<TcpStream>& stream) {
  try {
    const auto first = stream->read_line();
    if (!first) return;
    if (stream->last_line_truncated()) {
      quota_counter("line").add();
      quota_violations_.fetch_add(1, std::memory_order_relaxed);
      stream->write_all(err_reply("quota.line: handshake line too long") +
                        "\n");
      return;
    }
    const auto words = util::split_ws(*first);
    if (words.empty()) {
      stream->write_all(err_reply("empty handshake") + "\n");
      return;
    }
    if (draining_.load()) {
      stream->write_all(err_reply("draining") + "\n");
      return;
    }
    if (util::iequals(words[0], "CONTROL") && words.size() == 1) {
      handle_control(stream);
    } else if (util::iequals(words[0], "DATA") && words.size() == 2) {
      handle_data(stream, words[1]);
    } else {
      stream->write_all(
          err_reply("handshake must be CONTROL or DATA <token>") + "\n");
    }
  } catch (const NetError&) {
    // Peer vanished mid-command; nothing to clean up beyond the stream.
  } catch (const std::exception& e) {
    obs::log_error("net", "connection handler failed", {{"error", e.what()}});
  }
  // The Conn entry keeps the stream alive until the next reap (drain needs
  // the handle to kick stuck peers) — shut it down now so a deliberately
  // dropped client sees EOF immediately, not at the next accept.
  stream->shutdown_both();
}

void Server::handle_control(const std::shared_ptr<TcpStream>& stream) {
  std::shared_ptr<Session> session;
  std::string token;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    token = "s" + std::to_string(++next_session_);
    session = std::make_shared<Session>(token, options_.limits);
    sessions_[token] = session;
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("net.sessions.opened").add();
  if (journal_) {
    journal_->record_open(token);
    SessionJournal* journal = journal_.get();
    const std::string tok = token;
    session->set_ack_hook(
        [journal, tok](std::uint64_t id, const std::string& event) {
          journal->record_ack(tok, id, event);
        });
  }
  stream->write_all(ok_reply("ppdd " + std::to_string(kProtocolVersion) +
                             " session " + token) +
                    "\n");

  bool clean_quit = false;
  for (;;) {
    const auto line = stream->read_line();
    if (!line) break;
    if (stream->last_line_truncated()) {
      quota_counter("line").add();
      quota_violations_.fetch_add(1, std::memory_order_relaxed);
      stream->write_all(
          err_reply("quota.line: line exceeds " +
                    std::to_string(session->limits().max_line_bytes) +
                    " bytes") +
          "\n");
      continue;
    }
    if (util::trim(*line).empty()) continue;
    const auto words = util::split_ws(*line);
    std::string reply;
    try {
      const std::string& cmd = words[0];
      if (util::iequals(cmd, "PING")) {
        reply = ok_reply("pong");
      } else if (util::iequals(cmd, "SET")) {
        if (words.size() < 3)
          throw ParseError("usage: SET <key> <value>");
        // The value is everything after the key, so future list-valued
        // settings with spaces stay representable. Search for the key
        // *after* the command word — a key that happens to be a substring
        // of "SET" must not anchor the split inside the command.
        const auto cmd_end = line->find(words[0]) + words[0].size();
        const auto key_pos = line->find(words[1], cmd_end);
        const std::string value(
            util::trim(line->substr(key_pos + words[1].size())));
        session->set(words[1], value);
        if (journal_) journal_->record_set(session->token(), words[1], value);
        reply = ok_reply();
      } else if (util::iequals(cmd, "UPLOAD")) {
        if (words.size() != 3)
          throw ParseError("usage: UPLOAD <name> <nbytes>");
        std::uint64_t n = 0;
        if (!parse_wire_u64(words[2], &n)) {
          // Unparseable/negative/overflowing size: there is no way to know
          // how many payload bytes follow, so the stream cannot be
          // resynced — answer and drop the connection.
          quota_counter("size").add();
          quota_violations_.fetch_add(1, std::memory_order_relaxed);
          stream->write_all(
              err_reply("quota.size: UPLOAD size must be a non-negative "
                        "byte count, got '" +
                        words[2] + "'") +
              "\n");
          break;
        }
        if (n > session->limits().max_upload_bytes) {
          // Over-quota but well-formed: drain the announced payload in
          // bounded chunks (never allocating it) so the control stream
          // stays in sync and the session survives the violation.
          quota_counter("upload_bytes").add();
          quota_violations_.fetch_add(1, std::memory_order_relaxed);
          if (!stream->discard_exact(static_cast<std::size_t>(n))) break;
          reply = err_reply(
              "quota.upload_bytes: upload of " + words[2] +
              " bytes exceeds the session budget (" +
              std::to_string(session->limits().max_upload_bytes) + ")");
        } else {
          std::string payload;
          if (!stream->read_exact(payload, static_cast<std::size_t>(n)))
            break;  // EOF mid-upload: drop the connection
          if (journal_) {
            session->upload(words[1], payload);
            journal_->record_upload(session->token(), words[1], payload);
          } else {
            session->upload(words[1], std::move(payload));
          }
          reply = ok_reply("upload " + words[1] + " " + words[2]);
        }
      } else if (util::iequals(cmd, "QUERY")) {
        if (words.size() < 2)
          throw ParseError(
              "usage: QUERY <kind> [<arg>] [deadline_ms=<N>] [id=<N>]");
        QuerySpec spec;
        for (std::size_t w = 2; w < words.size(); ++w) {
          const std::string& word = words[w];
          if (util::starts_with(word, "deadline_ms=")) {
            const std::string v = word.substr(12);
            if (!parse_wire_u64(v, &spec.deadline_ms) || spec.deadline_ms == 0)
              throw ParseError("deadline_ms needs a positive integer, got '" +
                               v + "'");
          } else if (util::starts_with(word, "id=")) {
            const std::string v = word.substr(3);
            if (!parse_wire_u64(v, &spec.reissue_id) || spec.reissue_id == 0)
              throw ParseError("id needs a positive integer, got '" + v + "'");
          } else if (spec.arg.empty() && word.find('=') == std::string::npos) {
            spec.arg = word;
          } else {
            throw ParseError(
                "usage: QUERY <kind> [<arg>] [deadline_ms=<N>] [id=<N>]");
          }
        }
        reply = submit_query(session, words[1], spec);
      } else if (util::iequals(cmd, "RESUME")) {
        if (words.size() != 2) throw ParseError("usage: RESUME <token>");
        reply = resume_session(session, token, words[1]);
      } else if (util::iequals(cmd, "STATS")) {
        reply = stats_json();
      } else if (util::iequals(cmd, "SUBSCRIBE")) {
        if (words.size() > 2)
          throw ParseError("usage: SUBSCRIBE [<period_s>]");
        double period = 1.0;
        if (words.size() == 2) {
          char* end = nullptr;
          period = std::strtod(words[1].c_str(), &end);
          if (end == words[1].c_str() || *end != '\0')
            throw ParseError("SUBSCRIBE period must be a number (seconds)");
        }
        if (period > 0.0) {
          period = std::max(period, kMinSubscribePeriod);
          session->set_subscribe_period(period);
          push_cv_.notify_all();  // first snapshot goes out immediately
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", period);
          reply = ok_reply(std::string("subscribe ") + buf);
        } else {
          session->set_subscribe_period(0.0);
          reply = ok_reply("subscribe off");
        }
      } else if (util::iequals(cmd, "TRACE")) {
        std::ostringstream dump;
        obs::TraceSession::global().write_chrome_trace(dump);
        const std::string payload = dump.str();
        stream->write_all(ok_reply("trace " + std::to_string(payload.size())) +
                          "\n");
        stream->write_all(payload);
        continue;  // reply already written (header + raw payload)
      } else if (util::iequals(cmd, "QUIT")) {
        stream->write_all(ok_reply("bye") + "\n");
        clean_quit = true;
        break;
      } else {
        throw ParseError("unknown command: " + cmd);
      }
    } catch (const NetError&) {
      throw;  // socket-level failure: drop the connection, not the server
    } catch (const QuotaError& e) {
      quota_counter(e.leaf()).add();
      quota_violations_.fetch_add(1, std::memory_order_relaxed);
      reply = err_reply(e.what());
    } catch (const std::exception& e) {
      // ParseError from SET/QUERY validation, but also anything unexpected:
      // a bad command must never take the control loop down.
      reply = err_reply(e.what());
    }
    stream->write_all(reply + "\n");
  }

  release_session(session, token, clean_quit);
}

void Server::release_session(const std::shared_ptr<Session>& session,
                             const std::string& token, bool clean_quit) {
  // A journal-backed session with history survives its control connection
  // (detached, RESUMEable) unless the client said QUIT; everything else is
  // erased as before. Detached sessions are bounded: beyond the cap the
  // oldest one is evicted, so hostile connect-and-vanish clients cannot
  // accumulate state.
  const bool keep = journal_ != nullptr && !clean_quit &&
                    !draining_.load() &&
                    (session->queries_accepted() > 0 ||
                     session->undelivered() > 0);
  std::shared_ptr<Session> evicted;
  std::string evicted_token;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (!keep) {
      sessions_.erase(token);
    } else {
      session->set_control_attached(false, ++next_detach_seq_);
      std::size_t detached = 0;
      std::uint64_t oldest_seq = 0;
      std::string oldest_token;
      for (const auto& [tok, s] : sessions_) {
        if (s->control_attached()) continue;
        ++detached;
        if (oldest_token.empty() || s->detached_seq() < oldest_seq) {
          oldest_seq = s->detached_seq();
          oldest_token = tok;
        }
      }
      if (detached > options_.max_detached_sessions && !oldest_token.empty()) {
        evicted = sessions_[oldest_token];
        evicted_token = oldest_token;
        sessions_.erase(oldest_token);
      }
    }
  }
  if (!keep && journal_) journal_->record_close(token);
  if (evicted) {
    if (journal_) journal_->record_close(evicted_token);
    evicted->shutdown();
    obs::log_warn("net", "evicted oldest detached session",
                  {{"token", evicted_token}});
  }
  if (!keep) {
    // Wake the session's data reader (if any); in-flight jobs keep their
    // shared_ptr and finish into the detached session.
    session->shutdown();
  }
}

std::string Server::resume_session(std::shared_ptr<Session>& session,
                                   std::string& token,
                                   const std::string& want_token) {
  if (journal_ == nullptr)
    throw ParseError("RESUME needs a journal-backed server (--journal)");
  if (session->queries_accepted() > 0)
    throw ParseError("RESUME must precede any QUERY on this connection");
  if (want_token == token) return ok_reply("resume " + token + " noop");
  std::shared_ptr<Session> target;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    const auto it = sessions_.find(want_token);
    if (it != sessions_.end() && !it->second->control_attached()) {
      target = it->second;
      target->set_control_attached(true);
      sessions_.erase(token);  // abandon the fresh, unused session
    }
  }
  if (!target)
    return err_reply("no resumable session '" + want_token +
                     "' (unknown, still attached, or evicted)");
  journal_->record_close(token);  // the abandoned fresh session
  session = target;
  token = want_token;
  std::string acked;
  for (const std::uint64_t id : session->acked_ids()) {
    if (!acked.empty()) acked += ',';
    acked += std::to_string(id);
  }
  obs::counter("net.sessions.resumed").add();
  return ok_reply("resume " + token + " next " +
                  std::to_string(session->queries_accepted()) + " acked " +
                  (acked.empty() ? "-" : acked));
}

void Server::handle_data(const std::shared_ptr<TcpStream>& stream,
                         const std::string& token) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    const auto it = sessions_.find(token);
    if (it != sessions_.end()) session = it->second;
  }
  if (!session) {
    stream->write_all(err_reply("unknown session token") + "\n");
    return;
  }
  stream->write_all(ok_reply("stream") + "\n");
  // The hello is written inside attach_data's critical section so it
  // precedes any buffered result events AND no concurrent notify()/deliver()
  // can fire after the client sees the hello but before the channel is
  // attached (a metrics frame dropped in that gap would skip a seq).
  session->attach_data(
      stream, "{\"event\":\"hello\",\"session\":" + json_quote(token) + "}");
  // Server-push channel: the client never sends; block until it hangs up
  // (or drain shuts the socket down under us).
  while (stream->read_line()) {
  }
  session->detach_data();
}

std::string Server::submit_query(const std::shared_ptr<Session>& session,
                                 const std::string& kind_word,
                                 const QuerySpec& spec) {
  if (draining_.load()) return err_reply("draining");
  const QueryKind kind = query_kind_from_string(kind_word);
  KindMetrics& km = kind_metrics_[static_cast<std::size_t>(kind)];

  // Idempotent re-issue of an already-acknowledged qid: answer from the
  // session's ack record (the journaled event bytes), never re-execute.
  if (spec.reissue_id != 0 &&
      session->acked_event(spec.reissue_id) != nullptr) {
    if (!session->redeliver(spec.reissue_id))
      return "BUSY backlog (redelivery buffered events at cap)";
    obs::counter("net.queries.deduped").add();
    return ok_reply(std::to_string(spec.reissue_id) + " cached");
  }

  QueryParams params = session->make_params(kind, spec.arg);  // throws

  // Process-wide admission: ceiling, then the load-shedding watermark.
  // Reserving the job slot inside the same critical section keeps the
  // ceiling exact under concurrent submits.
  std::uint64_t job_key = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const std::size_t ceiling = options_.max_inflight_total;
    if (ceiling > 0) {
      std::size_t watermark = options_.shed_watermark > 0
                                  ? options_.shed_watermark
                                  : ceiling / 2;
      watermark = std::min(watermark, ceiling);
      // Graduated shedding: low priority refused from the watermark,
      // medium priority from halfway between watermark and ceiling.
      const std::size_t high = watermark + (ceiling - watermark + 1) / 2;
      const int priority = kind_priority(kind);
      if (jobs_in_flight_ >= ceiling) {
        queries_busy_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("busy").add();
        quota_counter("inflight").add();
        quota_violations_.fetch_add(1, std::memory_order_relaxed);
        km.busy->add();
        return "BUSY server (in-flight ceiling " + std::to_string(ceiling) +
               ")";
      }
      if ((priority == 0 && jobs_in_flight_ >= watermark) ||
          (priority <= 1 && jobs_in_flight_ >= high)) {
        queries_shed_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("shed").add();
        km.shed->add();
        return "BUSY shed (overload: " + std::to_string(jobs_in_flight_) +
               " in flight >= watermark " + std::to_string(watermark) + ")";
      }
    }
    job_key = ++next_job_;
    job_tokens_[job_key] = params.cancel;
    ++jobs_in_flight_;
  }

  const auto release_job = [this, job_key] {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job_tokens_.erase(job_key);
    --jobs_in_flight_;
    jobs_cv_.notify_all();
  };

  // Per-session admission (window + backlog quota).
  std::uint64_t id = 0;
  if (spec.reissue_id != 0) {
    switch (session->admit_with_id(spec.reissue_id)) {
      case Session::Admit::kDuplicate:
        // Already running: the original admission will deliver exactly one
        // result event for this id.
        release_job();
        obs::counter("net.queries.deduped").add();
        return ok_reply(std::to_string(spec.reissue_id) + " dup");
      case Session::Admit::kBusy:
        id = 0;
        break;
      case Session::Admit::kAdmitted:
        id = spec.reissue_id;
        break;
    }
  } else {
    bool backlog_full = false;
    id = session->admit(&backlog_full);
    if (id == 0 && backlog_full) {
      release_job();
      quota_counter("backlog").add();
      quota_violations_.fetch_add(1, std::memory_order_relaxed);
      queries_busy_.fetch_add(1, std::memory_order_relaxed);
      queries_counter("busy").add();
      km.busy->add();
      return "BUSY backlog (" +
             std::to_string(session->limits().max_backlog) +
             " undelivered results; attach/drain the data channel)";
    }
  }
  if (id == 0) {
    release_job();
    queries_busy_.fetch_add(1, std::memory_order_relaxed);
    queries_counter("busy").add();
    km.busy->add();
    return "BUSY";
  }
  queries_accepted_.fetch_add(1, std::memory_order_relaxed);
  queries_counter("accepted").add();
  km.accepted->add();
  if (journal_)
    journal_->record_accept(session->token(), id, query_kind_name(kind),
                            spec.arg);

  // job_key doubles as the query id (qid): process-unique, echoed in the
  // result event, bound as the obs query context so every span/metric the
  // query triggers — including pool fan-out — is attributable to it.
  const auto admitted = std::chrono::steady_clock::now();
  const std::uint64_t deadline_ms = spec.deadline_ms;
  exec::ThreadPool::global().submit([this, session, params, kind, id, job_key,
                                     admitted, deadline_ms, &km] {
    const char* kind_name = query_kind_name(kind);
    if (options_.debug_pickup_delay_seconds > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.debug_pickup_delay_seconds));
    const auto start = std::chrono::steady_clock::now();
    const double queue_s = seconds_between(admitted, start);
    const char* status = "ok";
    int exit_code = 0;
    std::string body;
    std::string error;
    // deadline_ms counts from admission: expired while queued => the query
    // is shed at pickup (status "expired", no execution); otherwise the
    // remaining time clamps the resil budgets, which flow into
    // SimSettings::budget_seconds via run_query.
    const double remaining_s =
        deadline_ms == 0
            ? 0.0
            : static_cast<double>(deadline_ms) * 1e-3 - queue_s;
    if (deadline_ms != 0 && remaining_s <= 0.0) {
      status = "expired";
      exit_code = 1;
      error = "deadline of " + std::to_string(deadline_ms) +
              " ms expired after " + json_num(queue_s) + " s in queue";
      queries_expired_.fetch_add(1, std::memory_order_relaxed);
      queries_counter("expired").add();
      km.expired->add();
    } else {
      QueryParams p = params;
      if (deadline_ms != 0) {
        p.solve_budget = p.solve_budget > 0.0
                             ? std::min(p.solve_budget, remaining_s)
                             : remaining_s;
        p.sweep_budget = p.sweep_budget > 0.0
                             ? std::min(p.sweep_budget, remaining_s)
                             : remaining_s;
      }
      const obs::ScopedQueryContext qctx(job_key);
      try {
        const obs::Span span(std::string("net.query.") + kind_name);
        QueryResult result = run_query(kind, p);
        exit_code = result.exit_code;
        body = std::move(result.body);
        queries_ok_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("ok").add();
        km.ok->add();
      } catch (const exec::CancelledError& e) {
        status = "cancelled";
        exit_code = 1;
        error = e.what();
        queries_cancelled_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("cancelled").add();
        km.cancelled->add();
      } catch (const TimeoutError& e) {
        // With a deadline attached, a budget expiry mid-run is the deadline
        // firing — report it as expired, distinct from a numerical error.
        status = deadline_ms != 0 ? "expired" : "error";
        exit_code = 1;
        error = e.what();
        if (deadline_ms != 0) {
          queries_expired_.fetch_add(1, std::memory_order_relaxed);
          queries_counter("expired").add();
          km.expired->add();
        } else {
          queries_error_.fetch_add(1, std::memory_order_relaxed);
          queries_counter("error").add();
          km.error->add();
        }
      } catch (const std::exception& e) {
        status = "error";
        exit_code = 1;
        error = e.what();
        queries_error_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("error").add();
        km.error->add();
      }
    }
    const double execute_s =
        seconds_between(start, std::chrono::steady_clock::now());
    obs::histogram("net.query.wall_s").record(execute_s);
    km.queue_s->record(queue_s);
    km.execute_s->record(execute_s);
    if (options_.slow_query_seconds > 0.0 &&
        queue_s + execute_s >= options_.slow_query_seconds) {
      static obs::RateLimit slow_rl(5, 1.0);
      if (slow_rl.allow())
        obs::log_warn("net", "slow query",
                      {{"qid", std::to_string(job_key)},
                       {"session", session->token()},
                       {"id", std::to_string(id)},
                       {"kind", kind_name},
                       {"status", status},
                       {"queue_s", json_num(queue_s)},
                       {"execute_s", json_num(execute_s)}});
    }
    double serialize_s = 0.0;
    std::string event = result_event(id, job_key, kind_name, status, exit_code,
                                     queue_s, execute_s, body, error,
                                     &serialize_s);
    serialize_hist_->record(serialize_s);
    session->deliver(id, std::move(event));
    {
      // Notify while holding the mutex: the drain waiter cannot return (and
      // the Server cannot be destroyed under this cv) until this worker has
      // fully left both the notify and the lock.
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      job_tokens_.erase(job_key);
      --jobs_in_flight_;
      jobs_cv_.notify_all();
    }
  });
  return ok_reply(std::to_string(id));
}

void Server::drain() { drain_with_grace(options_.drain_grace_seconds); }

void Server::stop() { drain_with_grace(0.0); }

void Server::drain_with_grace(double grace_seconds) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_.load() || stopped_.load()) return;
  draining_.store(true);

  // 0. Stop the metrics pusher first so no events race the teardown.
  {
    std::lock_guard<std::mutex> lock(push_mutex_);
    push_stop_ = true;
  }
  push_cv_.notify_all();
  if (push_thread_.joinable()) push_thread_.join();

  // 1. No new connections; the accept loop unblocks and exits.
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Tell every attached data channel the server is going away, so
  // clients stop submitting and wait for their last results.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_)
      session->notify("{\"event\":\"drain\"}");
  }

  // 3. Give in-flight queries the grace budget to finish...
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait_for(
        lock, std::chrono::duration<double>(grace_seconds),
        [this] { return jobs_in_flight_ == 0; });
    // 4. ...then cancel the stragglers. A cancelled coverage sweep with a
    // session-configured checkpoint persists it (resil::SweepGuard) before
    // the CancelledError escapes, so the work is resumable.
    for (auto& [key, token] : job_tokens_) token.cancel();
    jobs_cv_.wait(lock, [this] { return jobs_in_flight_ == 0; });
  }

  // 5. Close every connection (control readers and data pushers) and join.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_) session->shutdown();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) conn->stream->shutdown_both();
    for (auto& conn : conns_)
      if (conn->thread.joinable()) conn->thread.join();
    conns_.clear();
  }
  std::size_t undelivered = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_)
      undelivered += session->undelivered();
    sessions_.clear();
  }
  stopped_.store(true);
  obs::log_info(
      "net", "ppdd drained",
      {{"completed", std::to_string(queries_ok_.load())},
       {"errors", std::to_string(queries_error_.load())},
       {"cancelled", std::to_string(queries_cancelled_.load())},
       {"expired", std::to_string(queries_expired_.load())},
       {"shed", std::to_string(queries_shed_.load())},
       {"undelivered", std::to_string(undelivered)}});
}

void Server::metrics_push_loop() {
  using clock = std::chrono::steady_clock;
  struct PushState {
    std::uint64_t seq = 0;
    obs::MetricsSnapshot last;
    clock::time_point last_time{};
    clock::time_point next_due{};
  };
  std::map<std::string, PushState> states;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(push_mutex_);
      if (push_stop_) return;
    }
    const auto now = clock::now();
    auto next_wake = now + std::chrono::seconds(1);
    bool any = false;
    std::vector<std::shared_ptr<Session>> due;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (auto it = states.begin(); it != states.end();) {
        // Forget sessions that closed or unsubscribed.
        const auto sit = sessions_.find(it->first);
        if (sit == sessions_.end() || sit->second->subscribe_period() <= 0.0)
          it = states.erase(it);
        else
          ++it;
      }
      for (auto& [token, session] : sessions_) {
        if (session->subscribe_period() <= 0.0) continue;
        any = true;
        const auto st = states.find(token);
        if (st == states.end() || st->second.next_due <= now)
          due.push_back(session);  // new subscriber: first push immediately
        else
          next_wake = std::min(next_wake, st->second.next_due);
      }
    }
    for (const auto& session : due) {
      const double period = session->subscribe_period();
      if (period <= 0.0) continue;  // unsubscribed since the scan
      PushState& st = states[session->token()];
      const obs::MetricsSnapshot cur = kind_registry_.snapshot();
      const double interval_s =
          st.seq == 0 ? 0.0 : seconds_between(st.last_time, now);
      const obs::MetricsSnapshot delta = obs::snapshot_delta(st.last, cur);
      ++st.seq;
      std::ostringstream os;
      os << "{\"event\":\"metrics\",\"seq\":" << st.seq
         << ",\"interval_s\":" << json_num(interval_s)
         << ",\"stats\":" << stats_json() << ",\"interval\":{";
      for (std::size_t k = 0; k < kQueryKindCount; ++k) {
        const std::string name = query_kind_name(static_cast<QueryKind>(k));
        const obs::HistogramSnapshot* ex =
            find_histogram(delta, name + ".execute_s");
        const obs::HistogramSnapshot* qu =
            find_histogram(delta, name + ".queue_s");
        if (k != 0) os << ',';
        os << '"' << name << "\":{\"ok\":" << find_counter(delta, name + ".ok")
           << ",\"execute_s_count\":" << (ex != nullptr ? ex->count : 0)
           << ",\"execute_s_sum\":" << json_num(ex != nullptr ? ex->sum : 0.0)
           << ",\"queue_s_sum\":" << json_num(qu != nullptr ? qu->sum : 0.0)
           << '}';
      }
      os << "}}";
      session->notify(os.str());
      st.last = cur;
      st.last_time = now;
      st.next_due =
          now + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(period));
      next_wake = std::min(next_wake, st.next_due);
    }
    std::unique_lock<std::mutex> lock(push_mutex_);
    if (push_stop_) return;
    if (any)
      push_cv_.wait_until(lock, next_wake);
    else
      // Idle: nothing subscribed. Wake on SUBSCRIBE (notified) or poll
      // slowly as a backstop.
      push_cv_.wait_for(lock, std::chrono::milliseconds(250));
  }
}

Server::Stats Server::stats() const {
  Stats s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.queries_accepted = queries_accepted_.load(std::memory_order_relaxed);
  s.queries_busy = queries_busy_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_error = queries_error_.load(std::memory_order_relaxed);
  s.queries_cancelled = queries_cancelled_.load(std::memory_order_relaxed);
  s.queries_expired = queries_expired_.load(std::memory_order_relaxed);
  s.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  s.quota_violations = quota_violations_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    s.sessions_active = sessions_.size();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    s.jobs_in_flight = jobs_in_flight_;
  }
  return s;
}

std::string Server::stats_json() const {
  const Stats s = stats();
  const auto cache = cache::solve_cache().totals();
  const obs::MetricsSnapshot snap = kind_registry_.snapshot();
  const double uptime_s =
      started_.load() ? seconds_between(started_at_,
                                        std::chrono::steady_clock::now())
                      : 0.0;
  const std::uint64_t lookups = cache.hits + cache.misses;
  const double hit_ratio =
      lookups == 0 ? 0.0
                   : static_cast<double>(cache.hits) /
                         static_cast<double>(lookups);
  const std::size_t ceiling = options_.max_inflight_total;
  const std::size_t watermark =
      options_.shed_watermark > 0
          ? std::min(options_.shed_watermark, ceiling)
          : ceiling / 2;

  std::ostringstream os;
  os << "{\"server\":{\"sessions_active\":" << s.sessions_active
     << ",\"sessions_opened\":" << s.sessions_opened
     << ",\"queries_accepted\":" << s.queries_accepted
     << ",\"queries_busy\":" << s.queries_busy
     << ",\"queries_ok\":" << s.queries_ok
     << ",\"queries_error\":" << s.queries_error
     << ",\"queries_cancelled\":" << s.queries_cancelled
     << ",\"queries_expired\":" << s.queries_expired
     << ",\"queries_shed\":" << s.queries_shed
     << ",\"quota_violations\":" << s.quota_violations
     << ",\"jobs_in_flight\":" << s.jobs_in_flight
     << ",\"inflight_ceiling\":" << ceiling
     << ",\"shed_watermark\":" << watermark << ",\"shed_mode\":"
     << (ceiling > 0 && s.jobs_in_flight >= watermark ? "true" : "false")
     << ",\"draining\":" << (draining_.load() ? "true" : "false")
     << ",\"uptime_s\":" << json_num(uptime_s);
  if (journal_)
    os << ",\"journal\":{\"path\":" << json_quote(journal_->path())
       << ",\"bytes\":" << journal_->bytes()
       << ",\"rotations\":" << journal_->rotations() << "}";
  os << ",\"serialize_s\":";
  {
    const obs::HistogramSnapshot* ser = find_histogram(snap, "serialize_s");
    if (ser != nullptr)
      obs::write_histogram_json(os, *ser);
    else
      os << "{}";
  }
  os << "},\"cache\":{\"hits\":" << cache.hits
     << ",\"misses\":" << cache.misses << ",\"entries\":" << cache.entries
     << ",\"bytes\":" << cache.bytes
     << ",\"hit_ratio\":" << json_num(hit_ratio) << "},\"kinds\":{";
  for (std::size_t k = 0; k < kQueryKindCount; ++k) {
    const std::string name = query_kind_name(static_cast<QueryKind>(k));
    if (k != 0) os << ',';
    os << '"' << name
       << "\":{\"accepted\":" << find_counter(snap, name + ".accepted")
       << ",\"ok\":" << find_counter(snap, name + ".ok")
       << ",\"error\":" << find_counter(snap, name + ".error")
       << ",\"cancelled\":" << find_counter(snap, name + ".cancelled")
       << ",\"busy\":" << find_counter(snap, name + ".busy")
       << ",\"expired\":" << find_counter(snap, name + ".expired")
       << ",\"shed\":" << find_counter(snap, name + ".shed")
       << ",\"queue_s\":";
    const obs::HistogramSnapshot* qu = find_histogram(snap, name + ".queue_s");
    if (qu != nullptr)
      obs::write_histogram_json(os, *qu);
    else
      os << "{}";
    os << ",\"execute_s\":";
    const obs::HistogramSnapshot* ex =
        find_histogram(snap, name + ".execute_s");
    if (ex != nullptr)
      obs::write_histogram_json(os, *ex);
    else
      os << "{}";
    os << '}';
  }
  os << "},\"sessions\":[";
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    bool first = true;
    for (const auto& [token, session] : sessions_) {
      if (!first) os << ',';
      first = false;
      os << "{\"token\":" << json_quote(token)
         << ",\"in_flight\":" << session->in_flight()
         << ",\"window\":" << session->limits().max_queue
         << ",\"accepted\":" << session->queries_accepted()
         << ",\"undelivered\":" << session->undelivered()
         << ",\"attached\":"
         << (session->control_attached() ? "true" : "false")
         << ",\"subscribed\":"
         << (session->subscribe_period() > 0.0 ? "true" : "false") << '}';
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace ppd::net
