#include "ppd/net/server.hpp"

#include <chrono>
#include <cstdio>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/exec/thread_pool.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::net {

namespace {

obs::Counter& queries_counter(const char* leaf) {
  return obs::counter(std::string("net.queries.") + leaf);
}

std::string result_event(std::uint64_t id, const char* kind,
                         const char* status, int exit_code, double elapsed_s,
                         const std::string& body, const std::string& error) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "{\"event\":\"result\",\"id\":%llu,\"kind\":\"%s\","
                "\"status\":\"%s\",\"exit_code\":%d,\"elapsed_s\":%.6f",
                static_cast<unsigned long long>(id), kind, status, exit_code,
                elapsed_s);
  std::string out = head;
  if (!body.empty()) out += ",\"body\":" + json_quote(body);
  if (!error.empty()) out += ",\"error\":" + json_quote(error);
  out += "}";
  return out;
}

}  // namespace

Server::Server(ServerOptions options) : options_(options) {}

Server::~Server() { stop(); }

void Server::start() {
  PPD_REQUIRE(!started_.load(), "Server::start called twice");
  listener_ = std::make_unique<TcpListener>(options_.port);
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  obs::log_info("net", "ppdd listening",
                {{"port", std::to_string(listener_->port())}});
}

std::uint16_t Server::port() const {
  PPD_REQUIRE(listener_ != nullptr, "Server::port before start()");
  return listener_->port();
}

void Server::accept_loop() {
  for (;;) {
    auto accepted = listener_->accept();
    if (!accepted) return;  // listener closed: drain/stop
    auto stream = std::make_shared<TcpStream>(std::move(*accepted));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    reap_finished_connections_locked();
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->stream = stream;
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw, stream] {
      handle_connection(stream);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void Server::reap_finished_connections_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::handle_connection(const std::shared_ptr<TcpStream>& stream) {
  try {
    const auto first = stream->read_line();
    if (!first) return;
    const auto words = util::split_ws(*first);
    if (words.empty()) {
      stream->write_all(err_reply("empty handshake") + "\n");
      return;
    }
    if (draining_.load()) {
      stream->write_all(err_reply("draining") + "\n");
      return;
    }
    if (util::iequals(words[0], "CONTROL") && words.size() == 1) {
      handle_control(stream);
    } else if (util::iequals(words[0], "DATA") && words.size() == 2) {
      handle_data(stream, words[1]);
    } else {
      stream->write_all(
          err_reply("handshake must be CONTROL or DATA <token>") + "\n");
    }
  } catch (const NetError&) {
    // Peer vanished mid-command; nothing to clean up beyond the stream.
  } catch (const std::exception& e) {
    obs::log_error("net", "connection handler failed", {{"error", e.what()}});
  }
}

void Server::handle_control(const std::shared_ptr<TcpStream>& stream) {
  std::shared_ptr<Session> session;
  std::string token;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    token = "s" + std::to_string(++next_session_);
    session = std::make_shared<Session>(token, options_.limits);
    sessions_[token] = session;
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("net.sessions.opened").add();
  stream->write_all(ok_reply("ppdd " + std::to_string(kProtocolVersion) +
                             " session " + token) +
                    "\n");

  for (;;) {
    const auto line = stream->read_line();
    if (!line) break;
    if (util::trim(*line).empty()) continue;
    const auto words = util::split_ws(*line);
    std::string reply;
    try {
      const std::string& cmd = words[0];
      if (util::iequals(cmd, "PING")) {
        reply = ok_reply("pong");
      } else if (util::iequals(cmd, "SET")) {
        if (words.size() < 3)
          throw ParseError("usage: SET <key> <value>");
        // The value is everything after the key, so future list-valued
        // settings with spaces stay representable. Search for the key
        // *after* the command word — a key that happens to be a substring
        // of "SET" must not anchor the split inside the command.
        const auto cmd_end = line->find(words[0]) + words[0].size();
        const auto key_pos = line->find(words[1], cmd_end);
        const std::string value(
            util::trim(line->substr(key_pos + words[1].size())));
        session->set(words[1], value);
        reply = ok_reply();
      } else if (util::iequals(cmd, "UPLOAD")) {
        if (words.size() != 3)
          throw ParseError("usage: UPLOAD <name> <nbytes>");
        char* end = nullptr;
        const unsigned long long n = std::strtoull(words[2].c_str(), &end, 10);
        if (end == words[2].c_str() || *end != '\0')
          throw ParseError("UPLOAD size must be a byte count");
        if (n > session->limits().max_upload_bytes)
          throw ParseError("upload larger than the session budget");
        std::string payload;
        if (!stream->read_exact(payload, static_cast<std::size_t>(n)))
          break;  // EOF mid-upload: drop the connection
        session->upload(words[1], std::move(payload));
        reply = ok_reply("upload " + words[1] + " " + words[2]);
      } else if (util::iequals(cmd, "QUERY")) {
        if (words.size() < 2 || words.size() > 3)
          throw ParseError("usage: QUERY <kind> [<arg>]");
        reply = submit_query(session, words[1],
                             words.size() == 3 ? words[2] : std::string());
      } else if (util::iequals(cmd, "STATS")) {
        reply = stats_json();
      } else if (util::iequals(cmd, "QUIT")) {
        stream->write_all(ok_reply("bye") + "\n");
        break;
      } else {
        throw ParseError("unknown command: " + cmd);
      }
    } catch (const NetError&) {
      throw;  // socket-level failure: drop the connection, not the server
    } catch (const std::exception& e) {
      // ParseError from SET/QUERY validation, but also anything unexpected:
      // a bad command must never take the control loop down.
      reply = err_reply(e.what());
    }
    stream->write_all(reply + "\n");
  }

  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.erase(token);
  }
  // Wake the session's data reader (if any); in-flight jobs keep their
  // shared_ptr and finish into the detached session.
  session->shutdown();
}

void Server::handle_data(const std::shared_ptr<TcpStream>& stream,
                         const std::string& token) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    const auto it = sessions_.find(token);
    if (it != sessions_.end()) session = it->second;
  }
  if (!session) {
    stream->write_all(err_reply("unknown session token") + "\n");
    return;
  }
  stream->write_all(ok_reply("stream") + "\n");
  session->attach_data(stream);
  session->notify("{\"event\":\"hello\",\"session\":" + json_quote(token) +
                  "}");
  // Server-push channel: the client never sends; block until it hangs up
  // (or drain shuts the socket down under us).
  while (stream->read_line()) {
  }
  session->detach_data();
}

std::string Server::submit_query(const std::shared_ptr<Session>& session,
                                 const std::string& kind_word,
                                 const std::string& arg) {
  if (draining_.load()) return err_reply("draining");
  const QueryKind kind = query_kind_from_string(kind_word);
  QueryParams params = session->make_params(kind, arg);  // throws ParseError

  const std::uint64_t id = session->admit();
  if (id == 0) {
    queries_busy_.fetch_add(1, std::memory_order_relaxed);
    queries_counter("busy").add();
    return "BUSY";
  }
  queries_accepted_.fetch_add(1, std::memory_order_relaxed);
  queries_counter("accepted").add();

  std::uint64_t job_key = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job_key = ++next_job_;
    job_tokens_[job_key] = params.cancel;
    ++jobs_in_flight_;
  }

  exec::ThreadPool::global().submit([this, session, params, kind, id,
                                     job_key] {
    const char* kind_name = query_kind_name(kind);
    const auto start = std::chrono::steady_clock::now();
    std::string event;
    try {
      const QueryResult result = run_query(kind, params);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      obs::histogram("net.query.wall_s").record(elapsed);
      queries_ok_.fetch_add(1, std::memory_order_relaxed);
      queries_counter("ok").add();
      event = result_event(id, kind_name, "ok", result.exit_code, elapsed,
                           result.body, {});
    } catch (const exec::CancelledError& e) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      queries_cancelled_.fetch_add(1, std::memory_order_relaxed);
      queries_counter("cancelled").add();
      event = result_event(id, kind_name, "cancelled", 1, elapsed, {},
                           e.what());
    } catch (const std::exception& e) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      queries_error_.fetch_add(1, std::memory_order_relaxed);
      queries_counter("error").add();
      event = result_event(id, kind_name, "error", 1, elapsed, {}, e.what());
    }
    session->deliver(std::move(event));
    {
      // Notify while holding the mutex: the drain waiter cannot return (and
      // the Server cannot be destroyed under this cv) until this worker has
      // fully left both the notify and the lock.
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      job_tokens_.erase(job_key);
      --jobs_in_flight_;
      jobs_cv_.notify_all();
    }
  });
  return ok_reply(std::to_string(id));
}

void Server::drain() { drain_with_grace(options_.drain_grace_seconds); }

void Server::stop() { drain_with_grace(0.0); }

void Server::drain_with_grace(double grace_seconds) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_.load() || stopped_.load()) return;
  draining_.store(true);

  // 1. No new connections; the accept loop unblocks and exits.
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Tell every attached data channel the server is going away, so
  // clients stop submitting and wait for their last results.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_)
      session->notify("{\"event\":\"drain\"}");
  }

  // 3. Give in-flight queries the grace budget to finish...
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait_for(
        lock, std::chrono::duration<double>(grace_seconds),
        [this] { return jobs_in_flight_ == 0; });
    // 4. ...then cancel the stragglers. A cancelled coverage sweep with a
    // session-configured checkpoint persists it (resil::SweepGuard) before
    // the CancelledError escapes, so the work is resumable.
    for (auto& [key, token] : job_tokens_) token.cancel();
    jobs_cv_.wait(lock, [this] { return jobs_in_flight_ == 0; });
  }

  // 5. Close every connection (control readers and data pushers) and join.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_) session->shutdown();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) conn->stream->shutdown_both();
    for (auto& conn : conns_)
      if (conn->thread.joinable()) conn->thread.join();
    conns_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.clear();
  }
  stopped_.store(true);
  obs::log_info("net", "ppdd drained", {});
}

Server::Stats Server::stats() const {
  Stats s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.queries_accepted = queries_accepted_.load(std::memory_order_relaxed);
  s.queries_busy = queries_busy_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_error = queries_error_.load(std::memory_order_relaxed);
  s.queries_cancelled = queries_cancelled_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    s.sessions_active = sessions_.size();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    s.jobs_in_flight = jobs_in_flight_;
  }
  return s;
}

std::string Server::stats_json() const {
  const Stats s = stats();
  const auto cache = cache::solve_cache().totals();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"sessions_active\":%zu,\"sessions_opened\":%llu,"
      "\"queries_accepted\":%llu,\"queries_busy\":%llu,\"queries_ok\":%llu,"
      "\"queries_error\":%llu,\"queries_cancelled\":%llu,"
      "\"jobs_in_flight\":%zu,\"draining\":%s,"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,\"cache_entries\":%zu,"
      "\"cache_bytes\":%zu}",
      s.sessions_active, static_cast<unsigned long long>(s.sessions_opened),
      static_cast<unsigned long long>(s.queries_accepted),
      static_cast<unsigned long long>(s.queries_busy),
      static_cast<unsigned long long>(s.queries_ok),
      static_cast<unsigned long long>(s.queries_error),
      static_cast<unsigned long long>(s.queries_cancelled), s.jobs_in_flight,
      draining_.load() ? "true" : "false",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), cache.entries,
      cache.bytes);
  return buf;
}

}  // namespace ppd::net
