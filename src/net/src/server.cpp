#include "ppd/net/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/exec/thread_pool.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::net {

namespace {

obs::Counter& queries_counter(const char* leaf) {
  return obs::counter(std::string("net.queries.") + leaf);
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Latency spec shared by the queue/execute/serialize histograms: 1 µs to
/// 1000 s, 36 log bins (~6 bins per decade).
constexpr obs::HistogramSpec kLatencySpec{1e-6, 1e3, 36};

/// SUBSCRIBE periods are clamped up to this so a client cannot turn the
/// pusher into a busy loop.
constexpr double kMinSubscribePeriod = 0.05;

/// Build the result event line. The serialize cost (JSON-escaping the body
/// is the expensive part) is measured first and embedded in the same
/// event, so the head is formatted after the tail.
std::string result_event(std::uint64_t id, std::uint64_t qid, const char* kind,
                         const char* status, int exit_code, double queue_s,
                         double execute_s, const std::string& body,
                         const std::string& error, double* serialize_s_out) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string tail;
  if (!body.empty()) tail += ",\"body\":" + json_quote(body);
  if (!error.empty()) tail += ",\"error\":" + json_quote(error);
  const double serialize_s =
      seconds_between(t0, std::chrono::steady_clock::now());
  if (serialize_s_out != nullptr) *serialize_s_out = serialize_s;
  // elapsed_s repeats execute_s: pre-breakdown consumers keyed on it.
  char head[288];
  std::snprintf(head, sizeof(head),
                "{\"event\":\"result\",\"id\":%llu,\"qid\":%llu,"
                "\"kind\":\"%s\",\"status\":\"%s\",\"exit_code\":%d,"
                "\"elapsed_s\":%.6f,\"queue_s\":%.6f,\"execute_s\":%.6f,"
                "\"serialize_s\":%.6f",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(qid), kind, status, exit_code,
                execute_s, queue_s, execute_s, serialize_s);
  std::string out = head;
  out += tail;
  out += "}";
  return out;
}

/// %.17g double for JSON (matches the metrics exporter's convention).
std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const obs::HistogramSnapshot* find_histogram(const obs::MetricsSnapshot& snap,
                                             const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::uint64_t find_counter(const obs::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

}  // namespace

Server::Server(ServerOptions options) : options_(options) {
  for (std::size_t k = 0; k < kind_metrics_.size(); ++k) {
    const std::string name = query_kind_name(static_cast<QueryKind>(k));
    KindMetrics& m = kind_metrics_[k];
    m.accepted = &kind_registry_.counter(name + ".accepted");
    m.ok = &kind_registry_.counter(name + ".ok");
    m.error = &kind_registry_.counter(name + ".error");
    m.cancelled = &kind_registry_.counter(name + ".cancelled");
    m.busy = &kind_registry_.counter(name + ".busy");
    m.queue_s = &kind_registry_.histogram(name + ".queue_s", kLatencySpec);
    m.execute_s = &kind_registry_.histogram(name + ".execute_s", kLatencySpec);
  }
  serialize_hist_ = &kind_registry_.histogram("serialize_s", kLatencySpec);
}

Server::~Server() { stop(); }

void Server::start() {
  PPD_REQUIRE(!started_.load(), "Server::start called twice");
  listener_ = std::make_unique<TcpListener>(options_.port);
  started_at_ = std::chrono::steady_clock::now();
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  push_thread_ = std::thread([this] { metrics_push_loop(); });
  obs::log_info("net", "ppdd listening",
                {{"port", std::to_string(listener_->port())}});
}

std::uint16_t Server::port() const {
  PPD_REQUIRE(listener_ != nullptr, "Server::port before start()");
  return listener_->port();
}

void Server::accept_loop() {
  for (;;) {
    auto accepted = listener_->accept();
    if (!accepted) return;  // listener closed: drain/stop
    auto stream = std::make_shared<TcpStream>(std::move(*accepted));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    reap_finished_connections_locked();
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->stream = stream;
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw, stream] {
      handle_connection(stream);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void Server::reap_finished_connections_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::handle_connection(const std::shared_ptr<TcpStream>& stream) {
  try {
    const auto first = stream->read_line();
    if (!first) return;
    const auto words = util::split_ws(*first);
    if (words.empty()) {
      stream->write_all(err_reply("empty handshake") + "\n");
      return;
    }
    if (draining_.load()) {
      stream->write_all(err_reply("draining") + "\n");
      return;
    }
    if (util::iequals(words[0], "CONTROL") && words.size() == 1) {
      handle_control(stream);
    } else if (util::iequals(words[0], "DATA") && words.size() == 2) {
      handle_data(stream, words[1]);
    } else {
      stream->write_all(
          err_reply("handshake must be CONTROL or DATA <token>") + "\n");
    }
  } catch (const NetError&) {
    // Peer vanished mid-command; nothing to clean up beyond the stream.
  } catch (const std::exception& e) {
    obs::log_error("net", "connection handler failed", {{"error", e.what()}});
  }
}

void Server::handle_control(const std::shared_ptr<TcpStream>& stream) {
  std::shared_ptr<Session> session;
  std::string token;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    token = "s" + std::to_string(++next_session_);
    session = std::make_shared<Session>(token, options_.limits);
    sessions_[token] = session;
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("net.sessions.opened").add();
  stream->write_all(ok_reply("ppdd " + std::to_string(kProtocolVersion) +
                             " session " + token) +
                    "\n");

  for (;;) {
    const auto line = stream->read_line();
    if (!line) break;
    if (util::trim(*line).empty()) continue;
    const auto words = util::split_ws(*line);
    std::string reply;
    try {
      const std::string& cmd = words[0];
      if (util::iequals(cmd, "PING")) {
        reply = ok_reply("pong");
      } else if (util::iequals(cmd, "SET")) {
        if (words.size() < 3)
          throw ParseError("usage: SET <key> <value>");
        // The value is everything after the key, so future list-valued
        // settings with spaces stay representable. Search for the key
        // *after* the command word — a key that happens to be a substring
        // of "SET" must not anchor the split inside the command.
        const auto cmd_end = line->find(words[0]) + words[0].size();
        const auto key_pos = line->find(words[1], cmd_end);
        const std::string value(
            util::trim(line->substr(key_pos + words[1].size())));
        session->set(words[1], value);
        reply = ok_reply();
      } else if (util::iequals(cmd, "UPLOAD")) {
        if (words.size() != 3)
          throw ParseError("usage: UPLOAD <name> <nbytes>");
        char* end = nullptr;
        const unsigned long long n = std::strtoull(words[2].c_str(), &end, 10);
        if (end == words[2].c_str() || *end != '\0')
          throw ParseError("UPLOAD size must be a byte count");
        if (n > session->limits().max_upload_bytes)
          throw ParseError("upload larger than the session budget");
        std::string payload;
        if (!stream->read_exact(payload, static_cast<std::size_t>(n)))
          break;  // EOF mid-upload: drop the connection
        session->upload(words[1], std::move(payload));
        reply = ok_reply("upload " + words[1] + " " + words[2]);
      } else if (util::iequals(cmd, "QUERY")) {
        if (words.size() < 2 || words.size() > 3)
          throw ParseError("usage: QUERY <kind> [<arg>]");
        reply = submit_query(session, words[1],
                             words.size() == 3 ? words[2] : std::string());
      } else if (util::iequals(cmd, "STATS")) {
        reply = stats_json();
      } else if (util::iequals(cmd, "SUBSCRIBE")) {
        if (words.size() > 2)
          throw ParseError("usage: SUBSCRIBE [<period_s>]");
        double period = 1.0;
        if (words.size() == 2) {
          char* end = nullptr;
          period = std::strtod(words[1].c_str(), &end);
          if (end == words[1].c_str() || *end != '\0')
            throw ParseError("SUBSCRIBE period must be a number (seconds)");
        }
        if (period > 0.0) {
          period = std::max(period, kMinSubscribePeriod);
          session->set_subscribe_period(period);
          push_cv_.notify_all();  // first snapshot goes out immediately
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", period);
          reply = ok_reply(std::string("subscribe ") + buf);
        } else {
          session->set_subscribe_period(0.0);
          reply = ok_reply("subscribe off");
        }
      } else if (util::iequals(cmd, "TRACE")) {
        std::ostringstream dump;
        obs::TraceSession::global().write_chrome_trace(dump);
        const std::string payload = dump.str();
        stream->write_all(ok_reply("trace " + std::to_string(payload.size())) +
                          "\n");
        stream->write_all(payload);
        continue;  // reply already written (header + raw payload)
      } else if (util::iequals(cmd, "QUIT")) {
        stream->write_all(ok_reply("bye") + "\n");
        break;
      } else {
        throw ParseError("unknown command: " + cmd);
      }
    } catch (const NetError&) {
      throw;  // socket-level failure: drop the connection, not the server
    } catch (const std::exception& e) {
      // ParseError from SET/QUERY validation, but also anything unexpected:
      // a bad command must never take the control loop down.
      reply = err_reply(e.what());
    }
    stream->write_all(reply + "\n");
  }

  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.erase(token);
  }
  // Wake the session's data reader (if any); in-flight jobs keep their
  // shared_ptr and finish into the detached session.
  session->shutdown();
}

void Server::handle_data(const std::shared_ptr<TcpStream>& stream,
                         const std::string& token) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    const auto it = sessions_.find(token);
    if (it != sessions_.end()) session = it->second;
  }
  if (!session) {
    stream->write_all(err_reply("unknown session token") + "\n");
    return;
  }
  stream->write_all(ok_reply("stream") + "\n");
  session->attach_data(stream);
  session->notify("{\"event\":\"hello\",\"session\":" + json_quote(token) +
                  "}");
  // Server-push channel: the client never sends; block until it hangs up
  // (or drain shuts the socket down under us).
  while (stream->read_line()) {
  }
  session->detach_data();
}

std::string Server::submit_query(const std::shared_ptr<Session>& session,
                                 const std::string& kind_word,
                                 const std::string& arg) {
  if (draining_.load()) return err_reply("draining");
  const QueryKind kind = query_kind_from_string(kind_word);
  QueryParams params = session->make_params(kind, arg);  // throws ParseError
  KindMetrics& km = kind_metrics_[static_cast<std::size_t>(kind)];

  const std::uint64_t id = session->admit();
  if (id == 0) {
    queries_busy_.fetch_add(1, std::memory_order_relaxed);
    queries_counter("busy").add();
    km.busy->add();
    return "BUSY";
  }
  queries_accepted_.fetch_add(1, std::memory_order_relaxed);
  queries_counter("accepted").add();
  km.accepted->add();

  std::uint64_t job_key = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job_key = ++next_job_;
    job_tokens_[job_key] = params.cancel;
    ++jobs_in_flight_;
  }

  // job_key doubles as the query id (qid): process-unique, echoed in the
  // result event, bound as the obs query context so every span/metric the
  // query triggers — including pool fan-out — is attributable to it.
  const auto admitted = std::chrono::steady_clock::now();
  exec::ThreadPool::global().submit([this, session, params, kind, id, job_key,
                                     admitted, &km] {
    const char* kind_name = query_kind_name(kind);
    const auto start = std::chrono::steady_clock::now();
    const double queue_s = seconds_between(admitted, start);
    const char* status = "ok";
    int exit_code = 0;
    std::string body;
    std::string error;
    {
      const obs::ScopedQueryContext qctx(job_key);
      try {
        const obs::Span span(std::string("net.query.") + kind_name);
        QueryResult result = run_query(kind, params);
        exit_code = result.exit_code;
        body = std::move(result.body);
        queries_ok_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("ok").add();
        km.ok->add();
      } catch (const exec::CancelledError& e) {
        status = "cancelled";
        exit_code = 1;
        error = e.what();
        queries_cancelled_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("cancelled").add();
        km.cancelled->add();
      } catch (const std::exception& e) {
        status = "error";
        exit_code = 1;
        error = e.what();
        queries_error_.fetch_add(1, std::memory_order_relaxed);
        queries_counter("error").add();
        km.error->add();
      }
    }
    const double execute_s =
        seconds_between(start, std::chrono::steady_clock::now());
    obs::histogram("net.query.wall_s").record(execute_s);
    km.queue_s->record(queue_s);
    km.execute_s->record(execute_s);
    if (options_.slow_query_seconds > 0.0 &&
        queue_s + execute_s >= options_.slow_query_seconds) {
      static obs::RateLimit slow_rl(5, 1.0);
      if (slow_rl.allow())
        obs::log_warn("net", "slow query",
                      {{"qid", std::to_string(job_key)},
                       {"session", session->token()},
                       {"id", std::to_string(id)},
                       {"kind", kind_name},
                       {"status", status},
                       {"queue_s", json_num(queue_s)},
                       {"execute_s", json_num(execute_s)}});
    }
    double serialize_s = 0.0;
    std::string event = result_event(id, job_key, kind_name, status, exit_code,
                                     queue_s, execute_s, body, error,
                                     &serialize_s);
    serialize_hist_->record(serialize_s);
    session->deliver(std::move(event));
    {
      // Notify while holding the mutex: the drain waiter cannot return (and
      // the Server cannot be destroyed under this cv) until this worker has
      // fully left both the notify and the lock.
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      job_tokens_.erase(job_key);
      --jobs_in_flight_;
      jobs_cv_.notify_all();
    }
  });
  return ok_reply(std::to_string(id));
}

void Server::drain() { drain_with_grace(options_.drain_grace_seconds); }

void Server::stop() { drain_with_grace(0.0); }

void Server::drain_with_grace(double grace_seconds) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_.load() || stopped_.load()) return;
  draining_.store(true);

  // 0. Stop the metrics pusher first so no events race the teardown.
  {
    std::lock_guard<std::mutex> lock(push_mutex_);
    push_stop_ = true;
  }
  push_cv_.notify_all();
  if (push_thread_.joinable()) push_thread_.join();

  // 1. No new connections; the accept loop unblocks and exits.
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Tell every attached data channel the server is going away, so
  // clients stop submitting and wait for their last results.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_)
      session->notify("{\"event\":\"drain\"}");
  }

  // 3. Give in-flight queries the grace budget to finish...
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait_for(
        lock, std::chrono::duration<double>(grace_seconds),
        [this] { return jobs_in_flight_ == 0; });
    // 4. ...then cancel the stragglers. A cancelled coverage sweep with a
    // session-configured checkpoint persists it (resil::SweepGuard) before
    // the CancelledError escapes, so the work is resumable.
    for (auto& [key, token] : job_tokens_) token.cancel();
    jobs_cv_.wait(lock, [this] { return jobs_in_flight_ == 0; });
  }

  // 5. Close every connection (control readers and data pushers) and join.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_) session->shutdown();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) conn->stream->shutdown_both();
    for (auto& conn : conns_)
      if (conn->thread.joinable()) conn->thread.join();
    conns_.clear();
  }
  std::size_t undelivered = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [token, session] : sessions_)
      undelivered += session->undelivered();
    sessions_.clear();
  }
  stopped_.store(true);
  obs::log_info(
      "net", "ppdd drained",
      {{"completed", std::to_string(queries_ok_.load())},
       {"errors", std::to_string(queries_error_.load())},
       {"cancelled", std::to_string(queries_cancelled_.load())},
       {"undelivered", std::to_string(undelivered)}});
}

void Server::metrics_push_loop() {
  using clock = std::chrono::steady_clock;
  struct PushState {
    std::uint64_t seq = 0;
    obs::MetricsSnapshot last;
    clock::time_point last_time{};
    clock::time_point next_due{};
  };
  std::map<std::string, PushState> states;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(push_mutex_);
      if (push_stop_) return;
    }
    const auto now = clock::now();
    auto next_wake = now + std::chrono::seconds(1);
    bool any = false;
    std::vector<std::shared_ptr<Session>> due;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (auto it = states.begin(); it != states.end();) {
        // Forget sessions that closed or unsubscribed.
        const auto sit = sessions_.find(it->first);
        if (sit == sessions_.end() || sit->second->subscribe_period() <= 0.0)
          it = states.erase(it);
        else
          ++it;
      }
      for (auto& [token, session] : sessions_) {
        if (session->subscribe_period() <= 0.0) continue;
        any = true;
        const auto st = states.find(token);
        if (st == states.end() || st->second.next_due <= now)
          due.push_back(session);  // new subscriber: first push immediately
        else
          next_wake = std::min(next_wake, st->second.next_due);
      }
    }
    for (const auto& session : due) {
      const double period = session->subscribe_period();
      if (period <= 0.0) continue;  // unsubscribed since the scan
      PushState& st = states[session->token()];
      const obs::MetricsSnapshot cur = kind_registry_.snapshot();
      const double interval_s =
          st.seq == 0 ? 0.0 : seconds_between(st.last_time, now);
      const obs::MetricsSnapshot delta = obs::snapshot_delta(st.last, cur);
      ++st.seq;
      std::ostringstream os;
      os << "{\"event\":\"metrics\",\"seq\":" << st.seq
         << ",\"interval_s\":" << json_num(interval_s)
         << ",\"stats\":" << stats_json() << ",\"interval\":{";
      for (std::size_t k = 0; k < kQueryKindCount; ++k) {
        const std::string name = query_kind_name(static_cast<QueryKind>(k));
        const obs::HistogramSnapshot* ex =
            find_histogram(delta, name + ".execute_s");
        const obs::HistogramSnapshot* qu =
            find_histogram(delta, name + ".queue_s");
        if (k != 0) os << ',';
        os << '"' << name << "\":{\"ok\":" << find_counter(delta, name + ".ok")
           << ",\"execute_s_count\":" << (ex != nullptr ? ex->count : 0)
           << ",\"execute_s_sum\":" << json_num(ex != nullptr ? ex->sum : 0.0)
           << ",\"queue_s_sum\":" << json_num(qu != nullptr ? qu->sum : 0.0)
           << '}';
      }
      os << "}}";
      session->notify(os.str());
      st.last = cur;
      st.last_time = now;
      st.next_due =
          now + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(period));
      next_wake = std::min(next_wake, st.next_due);
    }
    std::unique_lock<std::mutex> lock(push_mutex_);
    if (push_stop_) return;
    if (any)
      push_cv_.wait_until(lock, next_wake);
    else
      // Idle: nothing subscribed. Wake on SUBSCRIBE (notified) or poll
      // slowly as a backstop.
      push_cv_.wait_for(lock, std::chrono::milliseconds(250));
  }
}

Server::Stats Server::stats() const {
  Stats s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.queries_accepted = queries_accepted_.load(std::memory_order_relaxed);
  s.queries_busy = queries_busy_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_error = queries_error_.load(std::memory_order_relaxed);
  s.queries_cancelled = queries_cancelled_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    s.sessions_active = sessions_.size();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    s.jobs_in_flight = jobs_in_flight_;
  }
  return s;
}

std::string Server::stats_json() const {
  const Stats s = stats();
  const auto cache = cache::solve_cache().totals();
  const obs::MetricsSnapshot snap = kind_registry_.snapshot();
  const double uptime_s =
      started_.load() ? seconds_between(started_at_,
                                        std::chrono::steady_clock::now())
                      : 0.0;
  const std::uint64_t lookups = cache.hits + cache.misses;
  const double hit_ratio =
      lookups == 0 ? 0.0
                   : static_cast<double>(cache.hits) /
                         static_cast<double>(lookups);

  std::ostringstream os;
  os << "{\"server\":{\"sessions_active\":" << s.sessions_active
     << ",\"sessions_opened\":" << s.sessions_opened
     << ",\"queries_accepted\":" << s.queries_accepted
     << ",\"queries_busy\":" << s.queries_busy
     << ",\"queries_ok\":" << s.queries_ok
     << ",\"queries_error\":" << s.queries_error
     << ",\"queries_cancelled\":" << s.queries_cancelled
     << ",\"jobs_in_flight\":" << s.jobs_in_flight
     << ",\"draining\":" << (draining_.load() ? "true" : "false")
     << ",\"uptime_s\":" << json_num(uptime_s) << ",\"serialize_s\":";
  {
    const obs::HistogramSnapshot* ser = find_histogram(snap, "serialize_s");
    if (ser != nullptr)
      obs::write_histogram_json(os, *ser);
    else
      os << "{}";
  }
  os << "},\"cache\":{\"hits\":" << cache.hits
     << ",\"misses\":" << cache.misses << ",\"entries\":" << cache.entries
     << ",\"bytes\":" << cache.bytes
     << ",\"hit_ratio\":" << json_num(hit_ratio) << "},\"kinds\":{";
  for (std::size_t k = 0; k < kQueryKindCount; ++k) {
    const std::string name = query_kind_name(static_cast<QueryKind>(k));
    if (k != 0) os << ',';
    os << '"' << name
       << "\":{\"accepted\":" << find_counter(snap, name + ".accepted")
       << ",\"ok\":" << find_counter(snap, name + ".ok")
       << ",\"error\":" << find_counter(snap, name + ".error")
       << ",\"cancelled\":" << find_counter(snap, name + ".cancelled")
       << ",\"busy\":" << find_counter(snap, name + ".busy")
       << ",\"queue_s\":";
    const obs::HistogramSnapshot* qu = find_histogram(snap, name + ".queue_s");
    if (qu != nullptr)
      obs::write_histogram_json(os, *qu);
    else
      os << "{}";
    os << ",\"execute_s\":";
    const obs::HistogramSnapshot* ex =
        find_histogram(snap, name + ".execute_s");
    if (ex != nullptr)
      obs::write_histogram_json(os, *ex);
    else
      os << "{}";
    os << '}';
  }
  os << "},\"sessions\":[";
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    bool first = true;
    for (const auto& [token, session] : sessions_) {
      if (!first) os << ',';
      first = false;
      os << "{\"token\":" << json_quote(token)
         << ",\"in_flight\":" << session->in_flight()
         << ",\"window\":" << session->limits().max_queue
         << ",\"accepted\":" << session->queries_accepted()
         << ",\"subscribed\":"
         << (session->subscribe_period() > 0.0 ? "true" : "false") << '}';
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace ppd::net
