#include "ppd/net/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <string>

#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::net {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw ParseError("malformed JSON: " + what);
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  bad("bad \\u escape digit");
}

/// Decode the string whose opening quote is at s[i]; advances i past the
/// closing quote.
std::string unquote_at(std::string_view s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') bad("expected '\"'");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i >= s.size()) bad("dangling escape");
    c = s[i++];
    switch (c) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 > s.size()) bad("truncated \\u escape");
        int v = 0;
        for (int k = 0; k < 4; ++k) v = v * 16 + hex_digit(s[i++]);
        // The protocol only ever emits \u00xx for control bytes; reject
        // anything wider rather than mis-decode it.
        if (v > 0xff) bad("\\u escape beyond Latin-1 unsupported");
        out += static_cast<char>(v);
        break;
      }
      default: bad(std::string("unknown escape \\") + c);
    }
  }
  if (i >= s.size()) bad("unterminated string");
  ++i;  // closing quote
  return out;
}

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

constexpr int kMaxJsonDepth = 32;

JsonValue parse_value_at(std::string_view s, std::size_t& i, int depth) {
  if (depth > kMaxJsonDepth) bad("nesting too deep");
  skip_ws(s, i);
  if (i >= s.size()) bad("missing value");
  JsonValue v;
  const char c = s[i];
  if (c == '"') {
    v.kind = JsonValue::Kind::kString;
    v.scalar = unquote_at(s, i);
    return v;
  }
  if (c == '{') {
    v.kind = JsonValue::Kind::kObject;
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return v;
    }
    for (;;) {
      skip_ws(s, i);
      std::string key = unquote_at(s, i);
      skip_ws(s, i);
      if (i >= s.size() || s[i] != ':') bad("expected ':'");
      ++i;
      v.members.emplace_back(std::move(key), parse_value_at(s, i, depth + 1));
      skip_ws(s, i);
      if (i >= s.size()) bad("unterminated object");
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == '}') {
        ++i;
        return v;
      }
      bad("expected ',' or '}'");
    }
  }
  if (c == '[') {
    v.kind = JsonValue::Kind::kArray;
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == ']') {
      ++i;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value_at(s, i, depth + 1));
      skip_ws(s, i);
      if (i >= s.size()) bad("unterminated array");
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == ']') {
        ++i;
        return v;
      }
      bad("expected ',' or ']'");
    }
  }
  // Bare scalar: number / true / false / null.
  const std::size_t start = i;
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                          s[i] == '+' || s[i] == '-' || s[i] == '.'))
    ++i;
  if (i == start) bad(std::string("unexpected character '") + c + "'");
  v.scalar = std::string(s.substr(start, i - start));
  if (v.scalar == "null") {
    v.kind = JsonValue::Kind::kNull;
  } else if (v.scalar == "true" || v.scalar == "false") {
    v.kind = JsonValue::Kind::kBool;
  } else {
    v.kind = JsonValue::Kind::kNumber;
  }
  return v;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, val] : members)
    if (k == key) return &val;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) bad("missing member \"" + std::string(key) + "\"");
  return *v;
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) bad("value is not a number");
  std::size_t pos = 0;
  const double v = std::stod(scalar, &pos);
  if (pos != scalar.size()) bad("bad number \"" + scalar + "\"");
  return v;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind != Kind::kNumber) bad("value is not a number");
  std::size_t pos = 0;
  const unsigned long long v = std::stoull(scalar, &pos);
  if (pos != scalar.size()) bad("bad integer \"" + scalar + "\"");
  return static_cast<std::uint64_t>(v);
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) bad("value is not a bool");
  return scalar == "true";
}

JsonValue parse_json(std::string_view text) {
  std::size_t i = 0;
  JsonValue v = parse_value_at(text, i, 0);
  skip_ws(text, i);
  while (i < text.size() && (text[i] == '\n' || text[i] == '\r')) ++i;
  if (i != text.size()) bad("trailing bytes after document");
  return v;
}

std::string json_unquote(std::string_view s) {
  std::size_t i = 0;
  std::string out = unquote_at(s, i);
  if (i != s.size()) bad("trailing bytes after string");
  return out;
}

std::map<std::string, std::string> parse_flat_json(std::string_view line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') bad("expected '{'");
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return out;
  for (;;) {
    skip_ws(line, i);
    const std::string key = unquote_at(line, i);
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') bad("expected ':'");
    ++i;
    skip_ws(line, i);
    if (i >= line.size()) bad("missing value");
    if (line[i] == '"') {
      out[key] = unquote_at(line, i);
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      out[key] = std::string(util::trim(line.substr(start, i - start)));
    }
    skip_ws(line, i);
    if (i >= line.size()) bad("unterminated object");
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') break;
    bad("expected ',' or '}'");
  }
  return out;
}

std::string ok_reply(const std::string& detail) {
  return detail.empty() ? "OK" : "OK " + detail;
}

std::string err_reply(const std::string& message) {
  // Replies are one line by contract: flatten embedded newlines (multi-line
  // lint summaries, exception messages with context) instead of corrupting
  // the framing.
  std::string flat = message;
  for (char& c : flat)
    if (c == '\n' || c == '\r') c = ' ';
  return "ERR " + flat;
}

bool is_ok(std::string_view reply) {
  return reply == "OK" || util::starts_with(reply, "OK ");
}

}  // namespace ppd::net
