#include "ppd/net/journal.hpp"

#include <cstdio>
#include <sstream>

#include "ppd/net/protocol.hpp"
#include "ppd/util/error.hpp"

namespace ppd::net {

namespace {

/// FNV-1a over the upload body — a cheap content digest recorded next to
/// the text so an operator can eyeball which blob a journal entry holds
/// without dumping it.
std::string fnv64_hex(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

SessionJournal::SessionJournal(std::string path, std::size_t rotate_bytes,
                               State seed)
    : path_(std::move(path)), rotate_bytes_(rotate_bytes),
      live_(std::move(seed)) {
  for (auto it = live_.begin(); it != live_.end();)
    it = it->second.closed ? live_.erase(it) : std::next(it);
  if (!live_.empty()) {
    // Seeded from --recover: compact immediately so the new journal starts
    // from a clean snapshot instead of replaying history onto history.
    std::lock_guard<std::mutex> lock(mutex_);
    rotate_locked();  // opens out_ on the fresh snapshot
    --rotations_;  // the seeding compaction is not a size-triggered rotation
  } else {
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_)
      throw ParseError("cannot open journal " + path_ + " for appending");
    out_.seekp(0, std::ios::end);
    bytes_ = static_cast<std::size_t>(std::streamoff(out_.tellp()));
  }
}

void SessionJournal::append_locked(const std::string& line) {
  out_ << line << '\n';
  out_.flush();
  bytes_ += line.size() + 1;
  if (rotate_bytes_ > 0 && bytes_ > rotate_bytes_) rotate_locked();
}

void SessionJournal::write_state(std::ostream& os, const State& state) {
  for (const auto& [token, s] : state) {
    if (s.closed) continue;
    const std::string tok = json_quote(token);
    os << "{\"j\":\"open\",\"token\":" << tok << "}\n";
    for (const auto& [key, value] : s.config)
      os << "{\"j\":\"set\",\"token\":" << tok << ",\"key\":" << json_quote(key)
         << ",\"value\":" << json_quote(value) << "}\n";
    for (const auto& [name, text] : s.uploads)
      os << "{\"j\":\"upload\",\"token\":" << tok
         << ",\"name\":" << json_quote(name)
         << ",\"fnv\":" << json_quote(fnv64_hex(text))
         << ",\"text\":" << json_quote(text) << "}\n";
    os << "{\"j\":\"next\",\"token\":" << tok << ",\"id\":" << s.next_id
       << "}\n";
    for (const auto& [id, kindarg] : s.accepted)
      os << "{\"j\":\"accept\",\"token\":" << tok << ",\"id\":" << id
         << ",\"kind\":" << json_quote(kindarg.substr(0, kindarg.find(' ')))
         << ",\"arg\":"
         << json_quote(kindarg.find(' ') == std::string::npos
                           ? std::string()
                           : kindarg.substr(kindarg.find(' ') + 1))
         << "}\n";
    for (const auto& [id, event] : s.acked)
      os << "{\"j\":\"ack\",\"token\":" << tok << ",\"id\":" << id
         << ",\"event\":" << json_quote(event) << "}\n";
  }
}

void SessionJournal::rotate_locked() {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw ParseError("cannot open " + tmp + " for journal rotation");
    write_state(os, live_);
    os.flush();
    if (!os) throw ParseError("short write rotating journal to " + tmp);
  }
  if (out_.is_open()) out_.close();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw ParseError("cannot rename " + tmp + " over " + path_);
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) throw ParseError("cannot reopen journal " + path_);
  out_.seekp(0, std::ios::end);
  bytes_ = static_cast<std::size_t>(std::streamoff(out_.tellp()));
  ++rotations_;
}

void SessionJournal::record_open(const std::string& token) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_[token];  // default-constructed entry
  append_locked("{\"j\":\"open\",\"token\":" + json_quote(token) + "}");
}

void SessionJournal::record_set(const std::string& token,
                                const std::string& key,
                                const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_[token].config[key] = value;
  append_locked("{\"j\":\"set\",\"token\":" + json_quote(token) +
                ",\"key\":" + json_quote(key) +
                ",\"value\":" + json_quote(value) + "}");
}

void SessionJournal::record_upload(const std::string& token,
                                   const std::string& name,
                                   const std::string& text) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_[token].uploads[name] = text;
  append_locked("{\"j\":\"upload\",\"token\":" + json_quote(token) +
                ",\"name\":" + json_quote(name) +
                ",\"fnv\":" + json_quote(fnv64_hex(text)) +
                ",\"text\":" + json_quote(text) + "}");
}

void SessionJournal::record_accept(const std::string& token, std::uint64_t id,
                                   const std::string& kind,
                                   const std::string& arg) {
  std::lock_guard<std::mutex> lock(mutex_);
  RecoveredSession& s = live_[token];
  s.accepted[id] = kind + " " + arg;
  s.next_id = std::max(s.next_id, id);
  append_locked("{\"j\":\"accept\",\"token\":" + json_quote(token) +
                ",\"id\":" + std::to_string(id) +
                ",\"kind\":" + json_quote(kind) +
                ",\"arg\":" + json_quote(arg) + "}");
}

void SessionJournal::record_ack(const std::string& token, std::uint64_t id,
                                const std::string& event_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A delivery can race the session's close (the worker's ack hook fires
  // after the socket write, the client may QUIT in between): an ack for a
  // closed session must not resurrect it.
  const auto it = live_.find(token);
  if (it == live_.end()) return;
  RecoveredSession& s = it->second;
  s.accepted.erase(id);
  s.acked[id] = event_line;
  s.next_id = std::max(s.next_id, id);
  append_locked("{\"j\":\"ack\",\"token\":" + json_quote(token) +
                ",\"id\":" + std::to_string(id) +
                ",\"event\":" + json_quote(event_line) + "}");
}

void SessionJournal::record_close(const std::string& token) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_.erase(token);
  append_locked("{\"j\":\"close\",\"token\":" + json_quote(token) + "}");
}

SessionJournal::State SessionJournal::replay(const std::string& path) {
  State state;
  std::ifstream is(path, std::ios::binary);
  if (!is) return state;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::map<std::string, std::string> rec;
    try {
      rec = parse_flat_json(line);
    } catch (const std::exception&) {
      // A torn final append (crash mid-write) is expected; a torn middle
      // line is not, but recovery favours salvaging what parses.
      continue;
    }
    const std::string kind = rec.count("j") ? rec["j"] : std::string();
    const std::string token = rec.count("token") ? rec["token"] : std::string();
    if (token.empty()) continue;
    if (kind == "open") {
      state[token];
    } else if (kind == "set") {
      state[token].config[rec["key"]] = rec["value"];
    } else if (kind == "upload") {
      state[token].uploads[rec["name"]] = rec["text"];
    } else if (kind == "next") {
      RecoveredSession& s = state[token];
      s.next_id = std::max(s.next_id, parse_u64(rec["id"]));
    } else if (kind == "accept") {
      RecoveredSession& s = state[token];
      const std::uint64_t id = parse_u64(rec["id"]);
      s.accepted[id] = rec["kind"] + " " + rec["arg"];
      s.next_id = std::max(s.next_id, id);
    } else if (kind == "ack") {
      RecoveredSession& s = state[token];
      const std::uint64_t id = parse_u64(rec["id"]);
      s.accepted.erase(id);
      s.acked[id] = rec["event"];
      s.next_id = std::max(s.next_id, id);
    } else if (kind == "close") {
      state[token].closed = true;
    }
  }
  for (auto it = state.begin(); it != state.end();)
    it = it->second.closed ? state.erase(it) : std::next(it);
  return state;
}

std::uint64_t SessionJournal::rotations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rotations_;
}

std::size_t SessionJournal::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace ppd::net
