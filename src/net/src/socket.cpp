#include "ppd/net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace ppd::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void set_nodelay(int fd) {
  // The protocol is request/reply on small lines; without TCP_NODELAY every
  // exchange would eat a Nagle delay.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      line_limit_(other.line_limit_),
      truncated_(other.truncated_) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    line_limit_ = other.line_limit_;
    truncated_ = other.truncated_;
  }
  return *this;
}

TcpStream TcpStream::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to 127.0.0.1:" + std::to_string(port));
  }
  set_nodelay(fd);
  return TcpStream(fd);
}

std::optional<std::string> TcpStream::read_line() {
  truncated_ = false;
  for (;;) {
    if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
      if (line_limit_ > 0 && nl > line_limit_) {
        // Over-long but already complete (newline buffered): the stream is
        // naturally resynced, just surface the truncation.
        std::string head = buffer_.substr(0, 64);
        buffer_.erase(0, nl + 1);
        truncated_ = true;
        return head;
      }
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (line_limit_ > 0 && buffer_.size() > line_limit_) {
      // Over-long line from a hostile or broken peer: keep a short head for
      // the caller's error message and drop the rest of the line in bounded
      // chunks, so memory stays O(limit) and the next line reads cleanly.
      std::string head = buffer_.substr(0, 64);
      buffer_.clear();
      for (;;) {
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
          const char* nl_at = static_cast<const char*>(
              std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
          if (nl_at != nullptr) {
            buffer_.assign(nl_at + 1,
                           static_cast<std::size_t>(chunk + n - (nl_at + 1)));
            truncated_ = true;
            return head;
          }
          continue;
        }
        if (n == 0) {
          truncated_ = true;
          return head;  // EOF inside the over-long line
        }
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          truncated_ = true;
          return head;
        }
        throw_errno("recv");
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;
      std::string line = std::move(buffer_);
      buffer_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (errno == EINTR) continue;
    // A connection reset while waiting for a command is the peer vanishing,
    // not a server bug — treat it as EOF like an orderly close.
    if (errno == ECONNRESET) return std::nullopt;
    throw_errno("recv");
  }
}

bool TcpStream::read_exact(std::string& out, std::size_t n) {
  out.clear();
  out.reserve(n);
  const std::size_t from_buffer = std::min(n, buffer_.size());
  out.append(buffer_, 0, from_buffer);
  buffer_.erase(0, from_buffer);
  while (out.size() < n) {
    char chunk[4096];
    const std::size_t want = std::min(sizeof(chunk), n - out.size());
    const ssize_t got = ::recv(fd_, chunk, want, 0);
    if (got > 0) {
      out.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return false;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return false;
    throw_errno("recv");
  }
  return true;
}

bool TcpStream::discard_exact(std::size_t n) {
  const std::size_t from_buffer = std::min(n, buffer_.size());
  buffer_.erase(0, from_buffer);
  n -= from_buffer;
  while (n > 0) {
    char chunk[4096];
    const std::size_t want = std::min(sizeof(chunk), n);
    const ssize_t got = ::recv(fd_, chunk, want, 0);
    if (got > 0) {
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return false;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return false;
    throw_errno("recv");
  }
  return true;
}

void TcpStream::write_all(std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

void TcpStream::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<TcpStream> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return TcpStream(fd);
    }
    if (errno == EINTR) continue;
    // close() shut the listener down under us: report the orderly end of
    // the accept loop rather than an error.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED)
      return std::nullopt;
    throw_errno("accept");
  }
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace ppd::net
