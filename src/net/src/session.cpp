#include "ppd/net/session.hpp"

#include <algorithm>

#include "ppd/obs/metrics.hpp"
#include "ppd/util/error.hpp"

namespace ppd::net {

namespace {

/// Acked result events retained per session for idempotent re-issue after
/// a crash. Older acks age out (a re-issue of one simply re-executes) so a
/// long-lived session cannot grow without bound.
constexpr std::size_t kMaxAckedKept = 256;

bool known_key(const std::string& key) {
  static const std::vector<std::string> all = [] {
    std::vector<std::string> keys;
    for (const QueryKind kind :
         {QueryKind::kTransfer, QueryKind::kCalibrate, QueryKind::kCoverage,
          QueryKind::kRmin, QueryKind::kLint, QueryKind::kSta}) {
      const auto& k = query_keys(kind);
      keys.insert(keys.end(), k.begin(), k.end());
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  }();
  return std::binary_search(all.begin(), all.end(), key);
}

}  // namespace

void Session::set(const std::string& key, const std::string& value) {
  if (!known_key(key))
    throw ParseError("unknown config key: " + key);
  std::lock_guard<std::mutex> lock(mutex_);
  config_[key] = value;
}

void Session::upload(const std::string& name, std::string text) {
  if (name.empty() || name.find_first_of(" \t") != std::string::npos)
    throw ParseError("upload name must be one non-empty word");
  // Upload names are session-local labels, never paths — reject separator
  // characters outright so no later layer can be talked into treating one
  // as a filesystem location.
  if (name.find_first_of("/\\") != std::string::npos ||
      name.find("..") != std::string::npos)
    throw QuotaError("name", "upload name must not contain path separators: " +
                                 name);
  if (name.size() > 128)
    throw QuotaError("name", "upload name longer than 128 bytes");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = uploads_.find(name);
  const std::size_t replaced = it == uploads_.end() ? 0 : it->second.size();
  if (it == uploads_.end() && uploads_.size() >= limits_.max_uploads)
    throw QuotaError("uploads", "upload limit reached (" +
                                    std::to_string(limits_.max_uploads) +
                                    " blobs)");
  if (upload_bytes_ - replaced + text.size() > limits_.max_upload_bytes)
    throw QuotaError("upload_bytes",
                     "upload budget exceeded (" +
                         std::to_string(limits_.max_upload_bytes) + " bytes)");
  upload_bytes_ = upload_bytes_ - replaced + text.size();
  uploads_[name] = std::move(text);
}

QueryParams Session::make_params(QueryKind kind, const std::string& arg) const {
  std::map<std::string, std::string> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = config_;
  }
  QueryParams params = params_from_lookup(
      kind, [&snapshot](const std::string& key) -> std::optional<std::string> {
        const auto it = snapshot.find(key);
        if (it == snapshot.end()) return std::nullopt;
        return it->second;
      });
  if (kind == QueryKind::kLint) {
    if (arg.empty())
      throw ParseError("lint query needs an upload name: QUERY lint <name>");
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = uploads_.find(arg);
    if (it == uploads_.end())
      throw ParseError("no upload named '" + arg + "' in this session");
    params.lint_name = arg;
    params.lint_text = it->second;
  } else if (kind == QueryKind::kSta && !arg.empty()) {
    // `QUERY sta [<upload>]`: the upload is optional — without one the
    // query falls back to the `bench` config path or the bundled
    // benchmark, exactly like ppdtool.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = uploads_.find(arg);
    if (it == uploads_.end())
      throw ParseError("no upload named '" + arg + "' in this session");
    params.bench_name = arg;
    params.bench_text = it->second;
  } else if (!arg.empty()) {
    throw ParseError(std::string("query ") + query_kind_name(kind) +
                     " takes no argument");
  }
  return params;
}

std::uint64_t Session::admit(bool* backlog_full) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (backlog_full != nullptr) *backlog_full = false;
  if (ready_.size() >= limits_.max_backlog) {
    if (backlog_full != nullptr) *backlog_full = true;
    return 0;
  }
  if (in_flight_ >= limits_.max_queue) return 0;
  ++in_flight_;
  const std::uint64_t id = ++next_id_;
  inflight_ids_.insert(id);
  return id;
}

Session::Admit Session::admit_with_id(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_ids_.count(id) != 0) return Admit::kDuplicate;
  if (in_flight_ >= limits_.max_queue ||
      ready_.size() >= limits_.max_backlog)
    return Admit::kBusy;
  ++in_flight_;
  next_id_ = std::max(next_id_, id);
  inflight_ids_.insert(id);
  return Admit::kAdmitted;
}

bool Session::write_event_locked(const std::string& line) {
  if (!data_) return false;
  try {
    data_->write_all(line);
    data_->write_all("\n");
    return true;
  } catch (const NetError&) {
    // The data channel died mid-write (EPIPE / ECONNRESET): drop the
    // channel, keep the event. Buffered + future results wait for a
    // reattach; admission keeps counting them; the drain summary reports
    // them as undelivered.
    obs::counter("net.data.write_failed").add();
    data_.reset();
    return false;
  }
}

void Session::record_ack_locked(std::uint64_t id, const std::string& line) {
  inflight_ids_.erase(id);
  acked_[id] = line;
  while (acked_.size() > kMaxAckedKept) acked_.erase(acked_.begin());
  if (ack_hook_) ack_hook_(id, line);
}

void Session::deliver(std::uint64_t id, std::string event_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (write_event_locked(event_line)) {
    if (in_flight_ > 0) --in_flight_;
    record_ack_locked(id, event_line);
    return;
  }
  ready_.push_back(Ready{id, std::move(event_line), true});
}

bool Session::redeliver(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = acked_.find(id);
  if (it == acked_.end()) return false;
  if (write_event_locked(it->second)) return true;
  if (ready_.size() >= limits_.max_backlog) return false;
  ready_.push_back(Ready{id, it->second, false});
  return true;
}

const std::string* Session::acked_event(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = acked_.find(id);
  return it == acked_.end() ? nullptr : &it->second;
}

std::vector<std::uint64_t> Session::acked_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> ids;
  ids.reserve(acked_.size());
  for (const auto& [id, line] : acked_) ids.push_back(id);
  return ids;
}

void Session::restore(std::uint64_t next_id,
                      std::map<std::uint64_t, std::string> acked) {
  std::lock_guard<std::mutex> lock(mutex_);
  next_id_ = std::max(next_id_, next_id);
  acked_ = std::move(acked);
  while (acked_.size() > kMaxAckedKept) acked_.erase(acked_.begin());
}

void Session::set_ack_hook(
    std::function<void(std::uint64_t, const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  ack_hook_ = std::move(hook);
}

void Session::attach_data(std::shared_ptr<TcpStream> stream,
                          const std::string& preamble) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = std::move(stream);
  if (!preamble.empty() && !write_event_locked(preamble)) return;
  while (!ready_.empty()) {
    if (!write_event_locked(ready_.front().line)) break;
    const Ready done = std::move(ready_.front());
    ready_.pop_front();
    if (done.holds_slot) {
      if (in_flight_ > 0) --in_flight_;
      record_ack_locked(done.id, done.line);
    }
  }
}

void Session::detach_data() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.reset();
}

void Session::set_control_attached(bool attached, std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  control_attached_ = attached;
  if (!attached) detached_seq_ = seq;
}

bool Session::control_attached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return control_attached_;
}

std::uint64_t Session::detached_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return detached_seq_;
}

void Session::notify(const std::string& event_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_event_locked(event_line);
}

void Session::shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (data_) data_->shutdown_both();
}

std::size_t Session::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::size_t Session::undelivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ready_.size();
}

std::uint64_t Session::queries_accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

void Session::set_subscribe_period(double period_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscribe_period_s_ = period_s > 0.0 ? period_s : 0.0;
}

double Session::subscribe_period() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribe_period_s_;
}

}  // namespace ppd::net
