#include "ppd/net/session.hpp"

#include <algorithm>

#include "ppd/util/error.hpp"

namespace ppd::net {

namespace {

bool known_key(const std::string& key) {
  static const std::vector<std::string> all = [] {
    std::vector<std::string> keys;
    for (const QueryKind kind :
         {QueryKind::kTransfer, QueryKind::kCalibrate, QueryKind::kCoverage,
          QueryKind::kRmin, QueryKind::kLint, QueryKind::kSta}) {
      const auto& k = query_keys(kind);
      keys.insert(keys.end(), k.begin(), k.end());
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  }();
  return std::binary_search(all.begin(), all.end(), key);
}

}  // namespace

void Session::set(const std::string& key, const std::string& value) {
  if (!known_key(key))
    throw ParseError("unknown config key: " + key);
  std::lock_guard<std::mutex> lock(mutex_);
  config_[key] = value;
}

void Session::upload(const std::string& name, std::string text) {
  if (name.empty() || name.find_first_of(" \t") != std::string::npos)
    throw ParseError("upload name must be one non-empty word");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = uploads_.find(name);
  const std::size_t replaced = it == uploads_.end() ? 0 : it->second.size();
  if (it == uploads_.end() && uploads_.size() >= limits_.max_uploads)
    throw ParseError("upload limit reached (" +
                     std::to_string(limits_.max_uploads) + " blobs)");
  if (upload_bytes_ - replaced + text.size() > limits_.max_upload_bytes)
    throw ParseError("upload budget exceeded (" +
                     std::to_string(limits_.max_upload_bytes) + " bytes)");
  upload_bytes_ = upload_bytes_ - replaced + text.size();
  uploads_[name] = std::move(text);
}

QueryParams Session::make_params(QueryKind kind, const std::string& arg) const {
  std::map<std::string, std::string> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = config_;
  }
  QueryParams params = params_from_lookup(
      kind, [&snapshot](const std::string& key) -> std::optional<std::string> {
        const auto it = snapshot.find(key);
        if (it == snapshot.end()) return std::nullopt;
        return it->second;
      });
  if (kind == QueryKind::kLint) {
    if (arg.empty())
      throw ParseError("lint query needs an upload name: QUERY lint <name>");
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = uploads_.find(arg);
    if (it == uploads_.end())
      throw ParseError("no upload named '" + arg + "' in this session");
    params.lint_name = arg;
    params.lint_text = it->second;
  } else if (kind == QueryKind::kSta && !arg.empty()) {
    // `QUERY sta [<upload>]`: the upload is optional — without one the
    // query falls back to the `bench` config path or the bundled
    // benchmark, exactly like ppdtool.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = uploads_.find(arg);
    if (it == uploads_.end())
      throw ParseError("no upload named '" + arg + "' in this session");
    params.bench_name = arg;
    params.bench_text = it->second;
  } else if (!arg.empty()) {
    throw ParseError(std::string("query ") + query_kind_name(kind) +
                     " takes no argument");
  }
  return params;
}

std::uint64_t Session::admit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ >= limits_.max_queue) return 0;
  ++in_flight_;
  return ++next_id_;
}

bool Session::write_event_locked(const std::string& line) {
  if (!data_) return false;
  try {
    data_->write_all(line);
    data_->write_all("\n");
    return true;
  } catch (const NetError&) {
    // The data channel died mid-write: drop the channel, keep the event.
    // Buffered + future results wait for a reattach; admission keeps
    // counting them.
    data_.reset();
    return false;
  }
}

void Session::deliver(std::string event_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (write_event_locked(event_line)) {
    if (in_flight_ > 0) --in_flight_;
    return;
  }
  ready_.push_back(std::move(event_line));
}

void Session::attach_data(std::shared_ptr<TcpStream> stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = std::move(stream);
  while (!ready_.empty()) {
    if (!write_event_locked(ready_.front())) break;
    ready_.pop_front();
    if (in_flight_ > 0) --in_flight_;
  }
}

void Session::detach_data() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.reset();
}

void Session::notify(const std::string& event_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_event_locked(event_line);
}

void Session::shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (data_) data_->shutdown_both();
}

std::size_t Session::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::size_t Session::undelivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ready_.size();
}

std::uint64_t Session::queries_accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

void Session::set_subscribe_period(double period_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscribe_period_s_ = period_s > 0.0 ? period_s : 0.0;
}

double Session::subscribe_period() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribe_period_s_;
}

}  // namespace ppd::net
