#include "ppd/net/client.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "ppd/net/protocol.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::net {

namespace {

/// Second word of "OK ppdd <ver> session <token>"-style replies.
std::string word_at(const std::string& line, std::size_t index) {
  const auto words = util::split_ws(line);
  if (index >= words.size())
    throw ServiceError("malformed server reply: " + line);
  return words[index];
}

}  // namespace

Client Client::connect(std::uint16_t port) { return connect_impl(port, {}); }

Client Client::resume(std::uint16_t port, const std::string& token) {
  return connect_impl(port, token);
}

Client Client::connect_impl(std::uint16_t port,
                            const std::string& resume_token) {
  Client client;
  client.control_ = TcpStream::connect_loopback(port);
  client.control_.write_all("CONTROL\n");
  const auto hello = client.control_.read_line();
  if (!hello) throw ServiceError("server closed the control channel");
  if (!is_ok(*hello)) throw ServiceError(*hello);
  // "OK ppdd <ver> session <token>"
  client.session_ = word_at(*hello, 4);

  if (!resume_token.empty()) {
    // "OK resume <token> next <N> acked <id,...|->"
    const std::string reply = client.command("RESUME " + resume_token);
    client.session_ = word_at(reply, 2);
    if (util::split_ws(reply).size() >= 7) {
      const std::string acked = word_at(reply, 6);
      if (acked != "-")
        for (const auto& id : util::split(acked, ','))
          client.acked_ids_.push_back(
              std::strtoull(id.c_str(), nullptr, 10));
    }
  }

  client.data_ = TcpStream::connect_loopback(port);
  client.data_.write_all("DATA " + client.session_ + "\n");
  const auto stream_ok = client.data_.read_line();
  if (!stream_ok) throw ServiceError("server closed the data channel");
  if (!is_ok(*stream_ok)) throw ServiceError(*stream_ok);
  // First data event is the hello; consume it so wait() only sees results.
  const auto hello_event = client.data_.read_line();
  if (!hello_event) throw ServiceError("data channel closed before hello");
  return client;
}

std::string Client::command(const std::string& line) {
  control_.write_all(line + "\n");
  const auto reply = control_.read_line();
  if (!reply) throw ServiceError("server closed the control channel");
  if (!is_ok(*reply) && reply->rfind("BUSY", 0) != 0)
    throw ServiceError(*reply);
  return *reply;
}

void Client::set(const std::string& key, const std::string& value) {
  command("SET " + key + " " + value);
}

void Client::upload(const std::string& name, const std::string& text) {
  control_.write_all("UPLOAD " + name + " " + std::to_string(text.size()) +
                     "\n");
  control_.write_all(text);
  const auto reply = control_.read_line();
  if (!reply) throw ServiceError("server closed the control channel");
  if (!is_ok(*reply)) throw ServiceError(*reply);
}

Client::Submitted Client::submit(const std::string& kind,
                                 const std::string& arg) {
  return submit(kind, arg, SubmitOptions{});
}

Client::Submitted Client::submit(const std::string& kind,
                                 const std::string& arg,
                                 const SubmitOptions& opts) {
  std::string line = "QUERY " + kind;
  if (!arg.empty()) line += " " + arg;
  if (opts.deadline_ms != 0)
    line += " deadline_ms=" + std::to_string(opts.deadline_ms);
  if (opts.id != 0) line += " id=" + std::to_string(opts.id);
  const std::string reply = command(line);
  Submitted out;
  out.reply = reply;
  if (reply.rfind("BUSY", 0) == 0) {
    out.busy = true;
    return out;
  }
  // "OK <id>" | "OK <id> cached" (acked re-issue, event redelivered) |
  // "OK <id> dup" (already in flight, one result will arrive).
  out.id = std::strtoull(word_at(reply, 1).c_str(), nullptr, 10);
  const auto words = util::split_ws(reply);
  if (words.size() >= 3) {
    out.cached = words[2] == "cached";
    out.duplicate = words[2] == "dup";
  }
  return out;
}

Client::Result Client::wait(std::uint64_t id) {
  const auto buffered = pending_.find(id);
  if (buffered != pending_.end()) {
    Result result = std::move(buffered->second);
    pending_.erase(buffered);
    return result;
  }
  for (;;) {
    const auto line = data_.read_line();
    if (!line)
      throw ServiceError("data channel closed while waiting for query " +
                         std::to_string(id));
    // Metrics events are nested JSON (flat parse would choke); a waiting
    // client just skips them.
    if (line->rfind("{\"event\":\"metrics\"", 0) == 0) continue;
    const auto fields = parse_flat_json(*line);
    const auto event = fields.find("event");
    if (event == fields.end()) continue;
    if (event->second == "drain") {
      drained_ = true;
      continue;
    }
    if (event->second != "result") continue;

    Result result;
    result.raw = *line;
    const auto get = [&fields](const char* key) -> std::string {
      const auto it = fields.find(key);
      return it == fields.end() ? std::string() : it->second;
    };
    result.id = std::strtoull(get("id").c_str(), nullptr, 10);
    result.qid = std::strtoull(get("qid").c_str(), nullptr, 10);
    result.kind = get("kind");
    result.status = get("status");
    result.exit_code = std::atoi(get("exit_code").c_str());
    result.elapsed_s = std::strtod(get("elapsed_s").c_str(), nullptr);
    result.queue_s = std::strtod(get("queue_s").c_str(), nullptr);
    result.execute_s = std::strtod(get("execute_s").c_str(), nullptr);
    result.serialize_s = std::strtod(get("serialize_s").c_str(), nullptr);
    result.body = get("body");
    result.error = get("error");
    if (result.id == id) return result;
    pending_.emplace(result.id, std::move(result));
  }
}

Client::Result Client::run(const std::string& kind, const std::string& arg) {
  const Submitted submitted = submit(kind, arg);
  if (submitted.busy)
    throw ServiceError("server replied BUSY (session queue full)");
  return wait(submitted.id);
}

std::string Client::stats() {
  control_.write_all("STATS\n");
  const auto reply = control_.read_line();
  if (!reply) throw ServiceError("server closed the control channel");
  if (reply->rfind("ERR", 0) == 0) throw ServiceError(*reply);
  return *reply;
}

void Client::subscribe(double period_s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", period_s);
  command(std::string("SUBSCRIBE ") + buf);
}

std::optional<std::string> Client::next_event() {
  const auto line = data_.read_line();
  if (!line) return std::nullopt;
  if (line->rfind("{\"event\":\"drain\"", 0) == 0) drained_ = true;
  return line;
}

std::string Client::trace_dump() {
  control_.write_all("TRACE\n");
  const auto reply = control_.read_line();
  if (!reply) throw ServiceError("server closed the control channel");
  if (!is_ok(*reply)) throw ServiceError(*reply);
  // "OK trace <nbytes>" then the raw payload on the same stream.
  const auto n = std::strtoull(word_at(*reply, 2).c_str(), nullptr, 10);
  std::string payload;
  if (!control_.read_exact(payload, static_cast<std::size_t>(n)))
    throw ServiceError("control channel closed mid trace dump");
  return payload;
}

std::string Client::ping() { return command("PING"); }

void Client::quit() {
  try {
    command("QUIT");
  } catch (const NetError&) {
    // Already gone — quit is best-effort by design.
  } catch (const ServiceError&) {
  }
  control_.close();
  data_.close();
}

}  // namespace ppd::net
