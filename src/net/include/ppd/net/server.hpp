// The ppdd service core: a long-lived TCP server answering pulse-test
// queries for many concurrent clients against one shared backend.
//
// Architecture (PandABlocks-server control/data split):
//  - an accept thread hands each connection to its own reader thread;
//  - the first line selects the channel: CONTROL creates a session, DATA
//    attaches the streaming result channel of an existing session;
//  - control commands mutate session state synchronously; QUERY snapshots
//    the session config into a QueryParams and submits one job to the
//    process-wide ppd::exec pool — queries from every client batch onto
//    the same workers, and nested sweep parallelism degrades to serial on
//    a worker, so throughput scales with concurrent queries;
//  - results are pushed to the session's data channel as JSON events, with
//    bodies byte-identical to single-shot ppdtool output (ppd::net::query);
//  - one process-wide cache::SolveCache means concurrent clients amortize
//    each other's Newton warm-starts and memoized measurements.
//
// Backpressure is per-session (Session::admit; full window => BUSY).
// Graceful drain: stop accepting, notify data channels, let in-flight
// queries finish, then — past the grace budget — fire their CancelTokens
// (sweeps with a session-configured checkpoint persist it via ppd::resil
// before the cancellation escapes) and close everything.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ppd/net/session.hpp"
#include "ppd/net/socket.hpp"
#include "ppd/obs/metrics.hpp"

namespace ppd::net {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via Server::port())
  SessionLimits limits;
  /// How long drain() waits for in-flight queries before cancelling them.
  double drain_grace_seconds = 30.0;
  /// Queries whose queue + execute time exceeds this emit a rate-limited
  /// slow-query warning with the query id; <= 0 disables the log.
  double slow_query_seconds = 1.0;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the loopback listener and start the accept thread.
  void start();

  /// The bound control port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;

  /// Graceful drain: refuse new connections and queries, push a drain
  /// event to every data channel, wait drain_grace_seconds for in-flight
  /// queries, cancel stragglers, then close all connections. Idempotent;
  /// blocks until the server is fully stopped.
  void drain();

  /// drain() with a zero grace budget (in-flight queries are cancelled
  /// immediately). The destructor calls this.
  void stop();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t queries_accepted = 0;
    std::uint64_t queries_busy = 0;
    std::uint64_t queries_ok = 0;
    std::uint64_t queries_error = 0;
    std::uint64_t queries_cancelled = 0;
    std::size_t sessions_active = 0;
    std::size_t jobs_in_flight = 0;
  };
  [[nodiscard]] Stats stats() const;
  /// The STATS reply: one nested JSON object — server totals, solve-cache
  /// totals, per-query-kind counters plus queue/execute latency histograms
  /// (from this server's own registry, so totals are exact per instance),
  /// and a per-session listing. One line (no embedded newlines).
  [[nodiscard]] std::string stats_json() const;

 private:
  struct Conn {
    std::thread thread;
    std::shared_ptr<TcpStream> stream;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(const std::shared_ptr<TcpStream>& stream);
  void handle_control(const std::shared_ptr<TcpStream>& stream);
  void handle_data(const std::shared_ptr<TcpStream>& stream,
                   const std::string& token);
  /// QUERY: validate, admit, submit to the exec pool. Returns the reply.
  std::string submit_query(const std::shared_ptr<Session>& session,
                           const std::string& kind_word,
                           const std::string& arg);
  void drain_with_grace(double grace_seconds);
  void reap_finished_connections_locked();
  /// Dedicated thread pushing "metrics" events to subscribed sessions.
  void metrics_push_loop();

  /// Cached handles into kind_registry_, one row per QueryKind. The
  /// registry is server-local (not the process-global one) so STATS totals
  /// count exactly this instance's queries — fresh per Server, exact under
  /// any thread count (the shard-merge contract).
  struct KindMetrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* error = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* busy = nullptr;
    obs::Histogram* queue_s = nullptr;
    obs::Histogram* execute_s = nullptr;
  };

  ServerOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex lifecycle_mutex_;  ///< serializes drain()/stop()

  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 0;

  // In-flight jobs: counted for drain, tokens registered for cancellation.
  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::size_t jobs_in_flight_ = 0;
  std::map<std::uint64_t, exec::CancelToken> job_tokens_;
  std::uint64_t next_job_ = 0;

  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> queries_accepted_{0};
  std::atomic<std::uint64_t> queries_busy_{0};
  std::atomic<std::uint64_t> queries_ok_{0};
  std::atomic<std::uint64_t> queries_error_{0};
  std::atomic<std::uint64_t> queries_cancelled_{0};

  obs::Registry kind_registry_;
  std::array<KindMetrics, kQueryKindCount> kind_metrics_;
  obs::Histogram* serialize_hist_ = nullptr;
  std::chrono::steady_clock::time_point started_at_{};

  // Metrics pusher: woken by SUBSCRIBE and by drain/stop.
  std::thread push_thread_;
  std::mutex push_mutex_;
  std::condition_variable push_cv_;
  bool push_stop_ = false;
};

}  // namespace ppd::net
