// The ppdd service core: a long-lived TCP server answering pulse-test
// queries for many concurrent clients against one shared backend.
//
// Architecture (PandABlocks-server control/data split):
//  - an accept thread hands each connection to its own reader thread;
//  - the first line selects the channel: CONTROL creates a session, DATA
//    attaches the streaming result channel of an existing session;
//  - control commands mutate session state synchronously; QUERY snapshots
//    the session config into a QueryParams and submits one job to the
//    process-wide ppd::exec pool — queries from every client batch onto
//    the same workers, and nested sweep parallelism degrades to serial on
//    a worker, so throughput scales with concurrent queries;
//  - results are pushed to the session's data channel as JSON events, with
//    bodies byte-identical to single-shot ppdtool output (ppd::net::query);
//  - one process-wide cache::SolveCache means concurrent clients amortize
//    each other's Newton warm-starts and memoized measurements.
//
// Backpressure and overload control are layered:
//  - per-session window (Session::admit; full window/backlog => BUSY);
//  - a process-wide in-flight ceiling (max_inflight_total => BUSY server);
//  - above shed_watermark in-flight jobs the server load-sheds, refusing
//    low-priority kinds (coverage/rmin first, then calibrate) with a BUSY
//    shed reply — deterministic given the same arrival order;
//  - a QUERY may carry deadline_ms: if the deadline passes while the query
//    is still queued it is never executed and its result event reports
//    status "expired"; otherwise the remaining time clamps the query's
//    resil solve/sweep budgets (the SimSettings::budget_seconds path).
//
// Quotas: every per-session resource (upload bytes/count, control line
// length, result backlog) is capped; violations answer "ERR quota.<leaf>"
// and bump net.quota.<leaf> — never a crash or an unbounded allocation.
//
// Crash recovery: with a journal attached, session state (SET / UPLOAD /
// accepted qids / delivered result events) is persisted append-only; a
// restarted server with recover=true rebuilds the sessions detached, and a
// reconnecting client RESUMEs its token, learns which qids were already
// acked, and re-issues the rest idempotently ("QUERY <kind> id=<qid>").
//
// Graceful drain: stop accepting, notify data channels, let in-flight
// queries finish, then — past the grace budget — fire their CancelTokens
// (sweeps with a session-configured checkpoint persist it via ppd::resil
// before the cancellation escapes) and close everything.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ppd/net/journal.hpp"
#include "ppd/net/session.hpp"
#include "ppd/net/socket.hpp"
#include "ppd/obs/metrics.hpp"

namespace ppd::net {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via Server::port())
  SessionLimits limits;
  /// How long drain() waits for in-flight queries before cancelling them.
  double drain_grace_seconds = 30.0;
  /// Queries whose queue + execute time exceeds this emit a rate-limited
  /// slow-query warning with the query id; <= 0 disables the log.
  double slow_query_seconds = 1.0;
  /// Process-wide cap on in-flight queries across every session; at the
  /// ceiling every QUERY answers "BUSY server". 0 = unlimited.
  std::size_t max_inflight_total = 64;
  /// In-flight jobs at or above this enter load-shedding (low-priority
  /// kinds refused first). 0 = half the ceiling.
  std::size_t shed_watermark = 0;
  /// Crash-safe session journal ("" = off) and its compaction threshold.
  std::string journal_path;
  std::size_t journal_rotate_bytes = 4u << 20;
  /// Replay journal_path on start() and rebuild its sessions (detached,
  /// RESUMEable) instead of starting empty.
  bool recover = false;
  /// Journal-backed sessions that outlive their control connection; the
  /// oldest detached session is evicted beyond this.
  std::size_t max_detached_sessions = 16;
  /// Test hook: sleep this long at worker pickup before the deadline
  /// check, simulating queue delay deterministically. 0 in production.
  double debug_pickup_delay_seconds = 0.0;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the loopback listener and start the accept thread. With
  /// options.recover, replay the journal first and rebuild its sessions.
  void start();

  /// The bound control port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;

  /// Graceful drain: refuse new connections and queries, push a drain
  /// event to every data channel, wait drain_grace_seconds for in-flight
  /// queries, cancel stragglers, then close all connections. Idempotent;
  /// blocks until the server is fully stopped.
  void drain();

  /// drain() with a zero grace budget (in-flight queries are cancelled
  /// immediately). The destructor calls this.
  void stop();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t queries_accepted = 0;
    std::uint64_t queries_busy = 0;
    std::uint64_t queries_ok = 0;
    std::uint64_t queries_error = 0;
    std::uint64_t queries_cancelled = 0;
    std::uint64_t queries_expired = 0;  ///< deadline passed while queued/run
    std::uint64_t queries_shed = 0;     ///< refused by load-shedding
    std::uint64_t quota_violations = 0;
    std::size_t sessions_active = 0;
    std::size_t jobs_in_flight = 0;
  };
  [[nodiscard]] Stats stats() const;
  /// The STATS reply: one nested JSON object — server totals (including
  /// overload/quota counters and the shed-mode flag), solve-cache totals,
  /// per-query-kind counters plus queue/execute latency histograms (from
  /// this server's own registry, so totals are exact per instance), and a
  /// per-session listing. One line (no embedded newlines).
  [[nodiscard]] std::string stats_json() const;

 private:
  struct Conn {
    std::thread thread;
    std::shared_ptr<TcpStream> stream;
    std::atomic<bool> done{false};
  };

  /// Parsed tail of a QUERY line: positional arg + key=value options.
  struct QuerySpec {
    std::string arg;
    std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
    std::uint64_t reissue_id = 0;   ///< 0 = fresh admission
  };

  void accept_loop();
  void handle_connection(const std::shared_ptr<TcpStream>& stream);
  void handle_control(const std::shared_ptr<TcpStream>& stream);
  void handle_data(const std::shared_ptr<TcpStream>& stream,
                   const std::string& token);
  /// QUERY: validate, admit (quota/overload checks), submit to the exec
  /// pool. Returns the reply.
  std::string submit_query(const std::shared_ptr<Session>& session,
                           const std::string& kind_word,
                           const QuerySpec& spec);
  /// RESUME <token>: rebind this control connection to a detached session.
  std::string resume_session(std::shared_ptr<Session>& session,
                             std::string& token,
                             const std::string& want_token);
  /// Loop-exit bookkeeping: keep a journal-backed session detached (up to
  /// max_detached_sessions) or erase it.
  void release_session(const std::shared_ptr<Session>& session,
                       const std::string& token, bool clean_quit);
  void drain_with_grace(double grace_seconds);
  void reap_finished_connections_locked();
  /// Dedicated thread pushing "metrics" events to subscribed sessions.
  void metrics_push_loop();

  /// Cached handles into kind_registry_, one row per QueryKind. The
  /// registry is server-local (not the process-global one) so STATS totals
  /// count exactly this instance's queries — fresh per Server, exact under
  /// any thread count (the shard-merge contract).
  struct KindMetrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* error = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* busy = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* shed = nullptr;
    obs::Histogram* queue_s = nullptr;
    obs::Histogram* execute_s = nullptr;
  };

  ServerOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<SessionJournal> journal_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex lifecycle_mutex_;  ///< serializes drain()/stop()

  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 0;
  std::uint64_t next_detach_seq_ = 0;

  // In-flight jobs: counted for drain and the admission ceiling, tokens
  // registered for cancellation.
  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::size_t jobs_in_flight_ = 0;
  std::map<std::uint64_t, exec::CancelToken> job_tokens_;
  std::uint64_t next_job_ = 0;

  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> queries_accepted_{0};
  std::atomic<std::uint64_t> queries_busy_{0};
  std::atomic<std::uint64_t> queries_ok_{0};
  std::atomic<std::uint64_t> queries_error_{0};
  std::atomic<std::uint64_t> queries_cancelled_{0};
  std::atomic<std::uint64_t> queries_expired_{0};
  std::atomic<std::uint64_t> queries_shed_{0};
  std::atomic<std::uint64_t> quota_violations_{0};

  obs::Registry kind_registry_;
  std::array<KindMetrics, kQueryKindCount> kind_metrics_;
  obs::Histogram* serialize_hist_ = nullptr;
  std::chrono::steady_clock::time_point started_at_{};

  // Metrics pusher: woken by SUBSCRIBE and by drain/stop.
  std::thread push_thread_;
  std::mutex push_mutex_;
  std::condition_variable push_cv_;
  bool push_stop_ = false;
};

}  // namespace ppd::net
