// The query layer shared by ppdtool's subcommands and the ppdd service.
//
// A QueryParams is everything one coverage / R_min / transfer-function /
// calibrate / lint query needs, independent of where the values came from
// (strict --key=value CLI flags or a session's SET config). run_query
// renders the result into the byte-exact text the equivalent single-shot
// ppdtool invocation prints — both front ends call the same function, so
// "bit-identical across the wire" holds by construction, not by parallel
// maintenance of two formatters.
//
// Parameter keys, defaults and parsing are shared the same way:
// params_from_lookup drives both util::Cli (ppdtool) and the session config
// map (ppdd) through one lookup interface.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ppd/exec/cancel.hpp"
#include "ppd/util/cli.hpp"

namespace ppd::net {

enum class QueryKind { kTransfer, kCalibrate, kCoverage, kRmin, kLint, kSta };
/// Number of QueryKind values (per-kind metric tables are sized by this).
inline constexpr std::size_t kQueryKindCount = 6;

/// Parse "transfer" / "calibrate" / "coverage" / "rmin" / "lint" / "sta"
/// (case-insensitive); throws ppd::ParseError otherwise.
[[nodiscard]] QueryKind query_kind_from_string(const std::string& s);
[[nodiscard]] const char* query_kind_name(QueryKind kind);

struct QueryParams {
  // Path / fault selection (transfer, calibrate, coverage, rmin).
  std::string gates;              ///< "inv,nand2,..."; "" = seven-gate path
  std::string fault = "external";
  std::size_t stage = 1;

  // Monte-Carlo population.
  int samples = 0;                ///< per-kind default applied at build time
  std::uint64_t seed = 2007;
  double sigma = 0.05;

  // Sweep grids.
  double r_lo = 1e3, r_hi = 64e3;      ///< coverage R sweep [ohm]
  double w_lo = 0.08e-9, w_hi = 0.8e-9;  ///< transfer w_in grid [s]
  std::size_t points = 0;              ///< per-kind default (15 / 9)

  // Coverage.
  std::string method = "pulse";   ///< pulse | delay

  // R_min bisection.
  double rmin_lo = 100.0, rmin_hi = 100e3;
  int bisection_steps = 10;
  double target_coverage = 1.0;

  // Resilience (coverage + rmin).
  bool strict = false;            ///< true = fail fast (library default)
  double solve_budget = 0.0, sweep_budget = 0.0;
  std::string checkpoint;
  bool resume = false;
  std::string fault_plan;         ///< "" = PPD_FAULT_PLAN env
  std::string quarantine_json;    ///< side file ("" = none)

  // Lint (uploaded blob; the name's extension selects the language). The
  // json/suppress knobs are shared with the sta query.
  std::string lint_name;
  std::string lint_text;
  bool lint_json = false;
  std::string lint_min_severity;  ///< "" = note
  std::string lint_suppress;      ///< comma-separated codes (validated)

  // Static timing (sta). `bench` is a local .bench path (ppdtool); an
  // uploaded blob (bench_name + bench_text, ppdd) takes precedence; both
  // empty = the bundled synthetic C432-class benchmark. The report names
  // the netlist by base name, so file-loaded and uploaded runs of the
  // same netlist are byte-identical.
  std::string bench;
  std::string bench_name;
  std::string bench_text;
  double clock = 0.0;          ///< clock period [s]; <= 0 = critical delay
  std::size_t k_paths = 5;     ///< slackiest paths to enumerate
  double w_in_max = 1.2e-9;    ///< generator ceiling for survival bounds
  double w_th_floor = 50e-12;  ///< sensing floor for survival bounds
  double margin = 0.25;        ///< survival parameter margin
  double slack_frac = 0.25;    ///< PPD303 slack-site threshold fraction

  // Presentation + execution.
  bool csv = false;
  int threads = 1;
  /// Batched factor-once/solve-many electrical kernel (coverage + rmin).
  /// Bit-identical results; a pure throughput knob.
  bool batch = false;
  exec::CancelToken cancel;       ///< fire to abandon the sweep mid-flight
};

/// One string lookup: nullopt = key absent (use the default). The adapter
/// for util::Cli and for a session's config map.
using ParamLookup =
    std::function<std::optional<std::string>(const std::string& key)>;

/// Keys `kind` understands (SET validation and Cli allow-lists).
[[nodiscard]] const std::vector<std::string>& query_keys(QueryKind kind);

/// Build params for `kind` from a lookup, applying the per-kind defaults
/// ppdtool has always used. Unknown keys are the lookup's concern (Cli
/// throws, sessions reject at SET time); malformed values throw
/// ppd::ParseError here.
[[nodiscard]] QueryParams params_from_lookup(QueryKind kind,
                                             const ParamLookup& lookup);

/// Convenience adapter over a parsed util::Cli.
[[nodiscard]] QueryParams params_from_cli(QueryKind kind,
                                          const util::Cli& cli);

struct QueryResult {
  std::string body;   ///< byte-exact equivalent ppdtool stdout
  int exit_code = 0;  ///< process exit code ppdtool would return (lint: 1
                      ///< when error-severity findings remain)
};

/// Execute one query. Throws what the underlying layers throw
/// (ParseError, NumericalError, exec::CancelledError, ...).
[[nodiscard]] QueryResult run_query(QueryKind kind, const QueryParams& params);

}  // namespace ppd::net
