// Thin RAII wrappers over loopback TCP sockets — the transport under the
// ppdd control/data protocol. Deliberately minimal: blocking I/O, a
// buffered line reader (the protocol is line-based, like the
// PandABlocks-server control port), exact-count reads for upload payloads,
// and a listener whose accept loop can be woken from another thread for
// graceful drain.
//
// Every failure surfaces as ppd::net::NetError carrying errno text; EOF is
// a value (nullopt / false), not an exception, because a peer hanging up is
// a normal event for a server.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ppd::net {

/// Socket-layer failure (bind/connect/read/write). Carries errno context.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// One connected TCP stream (either side). Move-only; closes on destruct.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to 127.0.0.1:port. Throws NetError on failure.
  [[nodiscard]] static TcpStream connect_loopback(std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Next '\n'-terminated line, with the terminator (and any trailing '\r')
  /// stripped. nullopt on clean EOF with no buffered partial line; a final
  /// unterminated line is returned as-is. Throws NetError on read errors.
  ///
  /// With a line limit set (set_line_limit), a line longer than the limit
  /// never accumulates: its tail is read and discarded in bounded chunks
  /// until the newline, a short head is returned for the error message, and
  /// last_line_truncated() reports the violation — the stream stays in sync
  /// on the next line, so the server can answer ERR and keep serving.
  [[nodiscard]] std::optional<std::string> read_line();

  /// Cap on bytes buffered for one line (0 = unlimited, the default).
  void set_line_limit(std::size_t max_bytes) { line_limit_ = max_bytes; }
  /// True when the line returned by the last read_line() exceeded the limit
  /// (the returned string is a truncated head).
  [[nodiscard]] bool last_line_truncated() const { return truncated_; }

  /// Exactly n bytes into out (resized). False on EOF before n bytes.
  [[nodiscard]] bool read_exact(std::string& out, std::size_t n);

  /// Read and drop exactly n bytes (a rejected upload payload — consuming
  /// it keeps the control stream in sync without allocating the payload).
  /// False on EOF before n bytes.
  [[nodiscard]] bool discard_exact(std::size_t n);

  /// Write the whole buffer (handles partial writes / EINTR; SIGPIPE is
  /// suppressed per-call). Throws NetError when the peer is gone.
  void write_all(std::string_view data);

  /// Half-close both directions, waking any blocked reader on the peer —
  /// and on *this* stream, which is how the server detaches stuck
  /// connections during drain. Safe to call from another thread and
  /// idempotent; the fd stays owned until destruction.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
  std::size_t line_limit_ = 0;  ///< 0 = unlimited
  bool truncated_ = false;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port;
/// port() reports the bound one.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Block for the next connection. nullopt once close() was called (the
  /// drain path) or the listener is gone. Throws NetError on real failures.
  [[nodiscard]] std::optional<TcpStream> accept();

  /// Stop accepting: wakes a blocked accept(), which then returns nullopt.
  /// Safe from any thread; idempotent.
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ppd::net
