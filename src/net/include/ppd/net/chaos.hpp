// ChaosProxy — a fault-injecting loopback TCP proxy for hardening tests.
//
// The proxy sits between a client and ppdd and forwards raw bytes in both
// directions, consulting a seeded resil::FaultPlan (its sock-* seams) on
// every forwarded chunk:
//
//   sock-partial  forward the chunk as 1..8-byte dribbles, so line and
//                 frame reassembly on the far side is exercised;
//   sock-reset    hard-reset the connection mid-chunk (SO_LINGER 0 close
//                 => RST), the harshest peer departure;
//   sock-stall    slow-loris: hold the chunk for stall_seconds before
//                 forwarding (readers must not busy-spin or time out the
//                 server);
//   sock-delay    forward after delay_seconds (reordering across the two
//                 directions, late ACK-like arrival).
//
// Every decision is a pure hash of (plan seed, connection id, direction,
// seam, per-chunk draw counter) via resil::fault_uniform, so a failing
// seed replays byte-for-byte — no RNG state, no thread-schedule
// dependence in *what* is injected (the interleaving of two live sockets
// naturally still varies).
//
// The proxy never parses the protocol: it is pure bytes, which is what
// lets the same harness chaos-test CONTROL, DATA and upload payload
// traffic alike. tools/chaosproxy wraps this class in a CLI; the
// tests/net chaos suite drives it in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "ppd/net/socket.hpp"
#include "ppd/resil/faultplan.hpp"

namespace ppd::net {

struct ChaosProxyOptions {
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral (read back via port())
  std::uint16_t upstream_port = 0;
  resil::FaultPlan plan;  ///< only the sock-* seams are consulted
};

/// Injection totals, for asserting a chaos run actually exercised faults.
struct ChaosProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t resets = 0;
  std::uint64_t stalls = 0;
  std::uint64_t delays = 0;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind the listener and start accepting. Each connection dials the
  /// upstream and pumps both directions on their own threads.
  void start();

  /// The bound listen port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;

  /// Stop accepting, reset every live connection, join all threads.
  /// Idempotent.
  void stop();

  [[nodiscard]] ChaosProxyStats stats() const;

 private:
  struct Conn {
    TcpStream client;
    TcpStream upstream;
    std::thread up;    ///< client -> upstream pump
    std::thread down;  ///< upstream -> client pump
    std::atomic<int> open_pumps{2};
    std::atomic<bool> done{false};
  };

  void accept_loop();
  /// Forward src -> dst until EOF/reset. `direction` is 0 for
  /// client->upstream, 1 for upstream->client (part of the draw key).
  void pump(Conn* conn, TcpStream* src, TcpStream* dst, std::uint64_t conn_id,
            std::uint64_t direction);
  /// Interruptible sleep: returns early when stop() is underway.
  void chaos_sleep(double seconds);
  void reap_finished_locked();

  ChaosProxyOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_ = 0;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> forwarded_bytes_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace ppd::net
