// Client side of the ppdd protocol, shared by ppdctl, the service load
// bench and the tests: one CONTROL connection for commands plus one DATA
// connection streaming result events, wrapped behind submit/wait calls.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ppd/net/socket.hpp"

namespace ppd::net {

/// Server-reported failure (an ERR reply or an unexpected stream close) —
/// distinct from NetError, which is the socket itself failing.
class ServiceError : public std::runtime_error {
 public:
  explicit ServiceError(const std::string& what) : std::runtime_error(what) {}
};

class Client {
 public:
  /// Open the control channel, read the session token, then attach the
  /// data channel. Throws NetError / ServiceError.
  [[nodiscard]] static Client connect(std::uint16_t port);

  /// Reconnect to a detached session on a journal-backed server: RESUME
  /// <token> on a fresh control connection, then attach the data channel
  /// under the old token. acked_ids() reports which qids the server already
  /// delivered — re-issue the rest with SubmitOptions::id for idempotent
  /// recovery. Throws ServiceError when the token is not resumable.
  [[nodiscard]] static Client resume(std::uint16_t port,
                                     const std::string& token);

  /// Qids the server reported as already delivered in the RESUME reply
  /// (empty for a fresh connect()).
  [[nodiscard]] const std::vector<std::uint64_t>& acked_ids() const {
    return acked_ids_;
  }

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] const std::string& session() const { return session_; }

  /// SET a session config key. Throws ServiceError on ERR.
  void set(const std::string& key, const std::string& value);

  /// UPLOAD a blob under `name`. Throws ServiceError on ERR.
  void upload(const std::string& name, const std::string& text);

  struct Submitted {
    bool busy = false;    ///< true = backpressure/shed, nothing queued
    bool cached = false;  ///< re-issued acked id: result redelivered, no run
    bool duplicate = false;  ///< re-issued id already in flight
    std::uint64_t id = 0;
    std::string reply;  ///< raw reply line ("BUSY shed ..." vs plain BUSY)
  };
  struct SubmitOptions {
    /// Deadline for the whole query, counted from admission; expired
    /// queries report status "expired" instead of executing. 0 = none.
    std::uint64_t deadline_ms = 0;
    /// Re-issue this qid idempotently (recovery): an acked id is answered
    /// from the journal, an in-flight one is deduped. 0 = fresh query.
    std::uint64_t id = 0;
  };
  /// QUERY <kind> [<arg>] [deadline_ms=N] [id=N]. BUSY is a value
  /// (backpressure is a protocol outcome, not a failure); ERR throws
  /// ServiceError.
  [[nodiscard]] Submitted submit(const std::string& kind,
                                 const std::string& arg = {});
  [[nodiscard]] Submitted submit(const std::string& kind,
                                 const std::string& arg,
                                 const SubmitOptions& opts);

  struct Result {
    std::uint64_t id = 0;
    std::uint64_t qid = 0;  ///< server-wide query id (trace correlation)
    std::string kind;
    std::string status;   ///< "ok" | "error" | "cancelled"
    int exit_code = 0;
    double elapsed_s = 0.0;
    double queue_s = 0.0;      ///< admission -> worker pickup
    double execute_s = 0.0;    ///< running the query
    double serialize_s = 0.0;  ///< building the result event
    std::string body;     ///< byte-exact equivalent ppdtool stdout
    std::string error;
    std::string raw;      ///< the JSON event line as received
  };
  /// Block until the result for `id` arrives on the data channel (results
  /// for other ids are buffered). Throws ServiceError when the stream ends
  /// first.
  [[nodiscard]] Result wait(std::uint64_t id);

  /// submit + wait; throws ServiceError when the queue is full.
  [[nodiscard]] Result run(const std::string& kind,
                           const std::string& arg = {});

  /// The one-line STATS JSON.
  [[nodiscard]] std::string stats();

  /// SUBSCRIBE: ask for periodic "metrics" events on the data channel
  /// (period_s <= 0 unsubscribes). Read them with next_event().
  void subscribe(double period_s);

  /// Next raw event line from the data channel (nullopt = stream closed).
  /// Sets drained() when a drain event passes by. Do not mix with wait()
  /// on a session that has queries in flight — both read the same stream.
  [[nodiscard]] std::optional<std::string> next_event();

  /// TRACE: pull the server's Chrome trace-event JSON dump.
  [[nodiscard]] std::string trace_dump();

  /// PING round trip; returns the server's reply line.
  std::string ping();

  /// Polite goodbye (QUIT). The destructor just closes the sockets.
  void quit();

  /// True once the server announced drain on the data channel.
  [[nodiscard]] bool drained() const { return drained_; }

 private:
  Client() = default;
  static Client connect_impl(std::uint16_t port,
                             const std::string& resume_token);
  /// One control round trip; throws ServiceError on ERR or closed stream.
  std::string command(const std::string& line);

  TcpStream control_;
  TcpStream data_;
  std::string session_;
  bool drained_ = false;
  std::map<std::uint64_t, Result> pending_;
  std::vector<std::uint64_t> acked_ids_;
};

}  // namespace ppd::net
