// Client side of the ppdd protocol, shared by ppdctl, the service load
// bench and the tests: one CONTROL connection for commands plus one DATA
// connection streaming result events, wrapped behind submit/wait calls.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "ppd/net/socket.hpp"

namespace ppd::net {

/// Server-reported failure (an ERR reply or an unexpected stream close) —
/// distinct from NetError, which is the socket itself failing.
class ServiceError : public std::runtime_error {
 public:
  explicit ServiceError(const std::string& what) : std::runtime_error(what) {}
};

class Client {
 public:
  /// Open the control channel, read the session token, then attach the
  /// data channel. Throws NetError / ServiceError.
  [[nodiscard]] static Client connect(std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] const std::string& session() const { return session_; }

  /// SET a session config key. Throws ServiceError on ERR.
  void set(const std::string& key, const std::string& value);

  /// UPLOAD a blob under `name`. Throws ServiceError on ERR.
  void upload(const std::string& name, const std::string& text);

  struct Submitted {
    bool busy = false;   ///< true = backpressure, nothing queued
    std::uint64_t id = 0;
  };
  /// QUERY <kind> [<arg>]. BUSY is a value (backpressure is a protocol
  /// outcome, not a failure); ERR throws ServiceError.
  [[nodiscard]] Submitted submit(const std::string& kind,
                                 const std::string& arg = {});

  struct Result {
    std::uint64_t id = 0;
    std::uint64_t qid = 0;  ///< server-wide query id (trace correlation)
    std::string kind;
    std::string status;   ///< "ok" | "error" | "cancelled"
    int exit_code = 0;
    double elapsed_s = 0.0;
    double queue_s = 0.0;      ///< admission -> worker pickup
    double execute_s = 0.0;    ///< running the query
    double serialize_s = 0.0;  ///< building the result event
    std::string body;     ///< byte-exact equivalent ppdtool stdout
    std::string error;
    std::string raw;      ///< the JSON event line as received
  };
  /// Block until the result for `id` arrives on the data channel (results
  /// for other ids are buffered). Throws ServiceError when the stream ends
  /// first.
  [[nodiscard]] Result wait(std::uint64_t id);

  /// submit + wait; throws ServiceError when the queue is full.
  [[nodiscard]] Result run(const std::string& kind,
                           const std::string& arg = {});

  /// The one-line STATS JSON.
  [[nodiscard]] std::string stats();

  /// SUBSCRIBE: ask for periodic "metrics" events on the data channel
  /// (period_s <= 0 unsubscribes). Read them with next_event().
  void subscribe(double period_s);

  /// Next raw event line from the data channel (nullopt = stream closed).
  /// Sets drained() when a drain event passes by. Do not mix with wait()
  /// on a session that has queries in flight — both read the same stream.
  [[nodiscard]] std::optional<std::string> next_event();

  /// TRACE: pull the server's Chrome trace-event JSON dump.
  [[nodiscard]] std::string trace_dump();

  /// PING round trip; returns the server's reply line.
  std::string ping();

  /// Polite goodbye (QUIT). The destructor just closes the sockets.
  void quit();

  /// True once the server announced drain on the data channel.
  [[nodiscard]] bool drained() const { return drained_; }

 private:
  Client() = default;
  /// One control round trip; throws ServiceError on ERR or closed stream.
  std::string command(const std::string& line);

  TcpStream control_;
  TcpStream data_;
  std::string session_;
  bool drained_ = false;
  std::map<std::uint64_t, Result> pending_;
};

}  // namespace ppd::net
