// Wire grammar of the ppdd service, shared by the server, the ppdctl
// client and the tests. Modeled on the PandABlocks-server control/data
// split: a line-based control channel with one-line replies, and a
// server-push data channel streaming one JSON object per line.
//
// Connection handshake (first line selects the channel):
//   CONTROL                     -> OK ppdd <ver> session <token>
//   DATA <token>                -> OK stream
//
// Control commands:
//   SET <key> <value>           -> OK | ERR <msg>
//   UPLOAD <name> <nbytes>\n<raw bytes>
//                               -> OK upload <name> <nbytes> | ERR <msg>
//   QUERY <kind> [<arg>] [deadline_ms=<N>] [id=<N>]
//                               -> OK <id> | OK <id> cached | OK <id> dup
//                                | BUSY[ <reason>] | ERR <msg>
//                                  kind: transfer|calibrate|coverage|rmin|lint
//                                  deadline_ms: if the query is still queued
//                                  when the deadline (measured from admission)
//                                  elapses, it is never executed and its
//                                  result event carries status "expired".
//                                  id: client-chosen re-issue id for crash
//                                  recovery — an id the server has already
//                                  acknowledged answers "OK <id> cached"
//                                  without re-executing; an id still in
//                                  flight answers "OK <id> dup".
//   RESUME <token>              -> OK resume <token> next <N> acked <ids|->
//                                  re-binds this control connection to a
//                                  journaled session after a disconnect or a
//                                  server restart with --recover; must come
//                                  before any QUERY on the connection. <N> is
//                                  the resumed session's accepted-query count
//                                  (the next re-issue id to use) and <ids> the
//                                  comma-separated acked ids a client must not
//                                  re-execute.
//   STATS                       -> one nested JSON object:
//                                  {"server":{...},"cache":{...},
//                                   "kinds":{"<kind>":{accepted,ok,error,
//                                    cancelled,busy,"queue_s":{hist},
//                                    "execute_s":{hist}},...},
//                                   "sessions":[{...},...]}
//                                  hist = {"count","sum","mean","min","max",
//                                   "p50","p99","underflow","overflow",
//                                   "bins":[[lo,hi,count],...]}
//   SUBSCRIBE [<period_s>]      -> OK subscribe <period> | OK subscribe off
//                                  periodic "metrics" events on the session's
//                                  data channel; period <= 0 (or omitted arg
//                                  defaults to 1.0) unsubscribes
//   TRACE                       -> OK trace <nbytes> followed by <nbytes> of
//                                  Chrome trace-event JSON on the control
//                                  stream (recent served-query spans)
//   PING                        -> OK pong
//   QUIT                        -> OK bye (server closes the session)
//
// Overload and quota replies (typed, never a silent drop or a crash):
//   BUSY                        window full (per-session in-flight cap)
//   BUSY server (...)           process-wide in-flight ceiling reached
//   BUSY shed (...)             queue depth above the shed watermark; low-
//                               priority kinds (coverage, rmin) shed first,
//                               then calibrate, then transfer/lint/sta
//   BUSY backlog (...)          undelivered-result backlog cap reached
//   ERR quota.size              UPLOAD nbytes not a plain decimal <= 19
//                               digits (connection is dropped — the payload
//                               length is unknowable, so the stream cannot
//                               be resynchronised)
//   ERR quota.upload_bytes      UPLOAD exceeds the per-session byte budget
//                               (payload is drained; connection survives)
//   ERR quota.uploads           per-session netlist count cap
//   ERR quota.name              UPLOAD name with path separators / dotdot
//   ERR quota.line              control line longer than --max-line-bytes
//                               (stream resyncs at the next newline)
//
// Data events (one JSON object per line):
//   {"event":"hello","session":"<token>"}
//   {"event":"result","id":N,"qid":N,"kind":"...",
//    "status":"ok|error|cancelled|expired","exit_code":N,"elapsed_s":X,
//    "queue_s":X,"execute_s":X,"serialize_s":X,"body":"...","error":"..."}
//   {"event":"metrics","seq":N,"interval_s":X,"stats":{<STATS object>},
//    "interval":{"<kind>":{"ok":N,"execute_s_count":N,"execute_s_sum":X,
//     "queue_s_sum":X},...}}
//   {"event":"drain"}
//
// A result's "qid" is the server-wide query id minted at admission — the
// same id tags every trace span the query produced (args.qid in a TRACE
// dump), correlating a client's query with its server-side cost. The
// timing breakdown is queue-wait (admission -> worker pickup), execute
// (running the query), serialize (building the result event).
//
// A result's "body" is the byte-exact stdout of the equivalent single-shot
// ppdtool invocation (JSON-escaped on the wire): the determinism contract
// extends across the socket — ids and timings ride in separate fields so
// they never perturb the payload bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppd::net {

inline constexpr int kProtocolVersion = 1;
/// Default control port (the paper year, shifted into the user range).
inline constexpr std::uint16_t kDefaultPort = 7207;

/// Full JSON string escaping (reversible — unlike the lossy escaper used
/// for metrics meta blocks, this one must round-trip result bodies).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Inverse of json_quote. Throws ppd::ParseError on malformed escapes.
[[nodiscard]] std::string json_unquote(std::string_view s);

/// Parse one *flat* JSON object (string / number / bool / null values, no
/// nesting) into key -> raw value text; string values are unquoted. The
/// data-channel result/hello/drain events are flat by construction; the
/// nested STATS reply and metrics events need parse_json below.
/// Throws ppd::ParseError on malformed input.
[[nodiscard]] std::map<std::string, std::string> parse_flat_json(
    std::string_view line);

/// Fully parsed JSON value (recursive). Scalars keep their raw text in
/// `scalar` (strings already unquoted); objects keep member order as
/// emitted. Built for the nested STATS / metrics payloads — a small
/// recursive-descent reader, not a general-purpose JSON library.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  std::string scalar;  ///< raw number text / "true"/"false" / string bytes
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> items;                            ///< kArray

  /// Member lookup (objects only); nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Member access that throws ppd::ParseError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] double as_number() const;       ///< throws unless kNumber
  [[nodiscard]] std::uint64_t as_uint() const;  ///< throws unless kNumber
  [[nodiscard]] bool as_bool() const;           ///< throws unless kBool
};

/// Parse one complete JSON document (object/array/scalar). Trailing bytes
/// after the document and nesting deeper than an internal sanity depth are
/// rejected. Throws ppd::ParseError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reply-line helpers (control channel).
[[nodiscard]] std::string ok_reply(const std::string& detail = {});
[[nodiscard]] std::string err_reply(const std::string& message);
[[nodiscard]] bool is_ok(std::string_view reply);

}  // namespace ppd::net
