// Wire grammar of the ppdd service, shared by the server, the ppdctl
// client and the tests. Modeled on the PandABlocks-server control/data
// split: a line-based control channel with one-line replies, and a
// server-push data channel streaming one JSON object per line.
//
// Connection handshake (first line selects the channel):
//   CONTROL                     -> OK ppdd <ver> session <token>
//   DATA <token>                -> OK stream
//
// Control commands:
//   SET <key> <value>           -> OK | ERR <msg>
//   UPLOAD <name> <nbytes>\n<raw bytes>
//                               -> OK upload <name> <nbytes> | ERR <msg>
//   QUERY <kind> [<arg>]        -> OK <id> | BUSY | ERR <msg>
//                                  kind: transfer|calibrate|coverage|rmin|lint
//   STATS                       -> one JSON object (server + cache totals)
//   PING                        -> OK pong
//   QUIT                        -> OK bye (server closes the session)
//
// Data events (one JSON object per line):
//   {"event":"hello","session":"<token>"}
//   {"event":"result","id":N,"kind":"...","status":"ok|error|cancelled",
//    "exit_code":N,"elapsed_s":X,"body":"...","error":"..."}
//   {"event":"drain"}
//
// A result's "body" is the byte-exact stdout of the equivalent single-shot
// ppdtool invocation (JSON-escaped on the wire): the determinism contract
// extends across the socket.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ppd::net {

inline constexpr int kProtocolVersion = 1;
/// Default control port (the paper year, shifted into the user range).
inline constexpr std::uint16_t kDefaultPort = 7207;

/// Full JSON string escaping (reversible — unlike the lossy escaper used
/// for metrics meta blocks, this one must round-trip result bodies).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Inverse of json_quote. Throws ppd::ParseError on malformed escapes.
[[nodiscard]] std::string json_unquote(std::string_view s);

/// Parse one *flat* JSON object (string / number / bool / null values, no
/// nesting) into key -> raw value text; string values are unquoted. The
/// data-channel events and STATS replies are all flat by construction.
/// Throws ppd::ParseError on malformed input.
[[nodiscard]] std::map<std::string, std::string> parse_flat_json(
    std::string_view line);

/// Reply-line helpers (control channel).
[[nodiscard]] std::string ok_reply(const std::string& detail = {});
[[nodiscard]] std::string err_reply(const std::string& message);
[[nodiscard]] bool is_ok(std::string_view reply);

}  // namespace ppd::net
