// Append-only session journal — the crash-recovery story for ppdd.
//
// Every durable session mutation is one flat-JSON line appended (and
// flushed) to a single journal file:
//
//   {"j":"open","token":"s1"}
//   {"j":"set","token":"s1","key":"points","value":"5"}
//   {"j":"upload","token":"s1","name":"c.bench","fnv":"...","text":"..."}
//   {"j":"next","token":"s1","id":4}            (compaction snapshot only)
//   {"j":"accept","token":"s1","id":3,"kind":"transfer","arg":""}
//   {"j":"ack","token":"s1","id":3,"event":"{...result line...}"}
//   {"j":"close","token":"s1"}
//
// The journal keeps an in-memory mirror of the live sessions; once the
// file outgrows `rotate_bytes` the mirror is snapshotted to `<path>.tmp`
// and atomically renamed over the journal (the resil::Checkpoint idiom),
// so closed sessions and superseded acks never accumulate on disk and a
// crash during rotation leaves either the old or the new file, never a
// torn one.
//
// replay() rebuilds the mirror from a journal file; a restarted
// `ppdd --recover` turns each recovered entry back into a detached
// Session that a reconnecting client can RESUME. Acked events are replayed
// verbatim, which is what makes re-issue idempotent: a re-issued acked qid
// is answered from the journal, byte-identical, with no re-execution.
//
// Durability model: one flush per record — a kill -9 of the daemon loses
// nothing already flushed (page cache survives process death); fsync
// against power loss is deliberately out of scope for a loopback service.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

namespace ppd::net {

class SessionJournal {
 public:
  struct RecoveredSession {
    std::map<std::string, std::string> config;
    std::map<std::string, std::string> uploads;
    /// Accepted-but-unacked qids -> "kind arg" (informational; re-issue is
    /// client-driven).
    std::map<std::uint64_t, std::string> accepted;
    /// Acked qid -> the exact result event line that was delivered.
    std::map<std::uint64_t, std::string> acked;
    std::uint64_t next_id = 0;
    bool closed = false;
  };
  using State = std::map<std::string, RecoveredSession>;

  /// Open `path` for appending. A non-empty `seed` (the --recover state)
  /// is compacted into a fresh snapshot first, atomically replacing
  /// whatever the file held. Throws ppd::ParseError on I/O failure.
  explicit SessionJournal(std::string path,
                          std::size_t rotate_bytes = 4u << 20,
                          State seed = {});

  void record_open(const std::string& token);
  void record_set(const std::string& token, const std::string& key,
                  const std::string& value);
  void record_upload(const std::string& token, const std::string& name,
                     const std::string& text);
  void record_accept(const std::string& token, std::uint64_t id,
                     const std::string& kind, const std::string& arg);
  void record_ack(const std::string& token, std::uint64_t id,
                  const std::string& event_line);
  void record_close(const std::string& token);

  /// Rebuild the session state from a journal file. Unparseable trailing
  /// lines (a torn final append) are tolerated; earlier records must be
  /// well-formed. Missing file => empty state. Closed sessions are elided.
  [[nodiscard]] static State replay(const std::string& path);

  [[nodiscard]] const std::string& path() const { return path_; }
  /// Compactions performed (observability; tested by the rotation test).
  [[nodiscard]] std::uint64_t rotations() const;
  /// Bytes currently in the journal file (approximate, post-append).
  [[nodiscard]] std::size_t bytes() const;

 private:
  void append_locked(const std::string& line);
  void rotate_locked();
  static void write_state(std::ostream& os, const State& state);

  const std::string path_;
  const std::size_t rotate_bytes_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::size_t bytes_ = 0;
  std::uint64_t rotations_ = 0;
  State live_;  ///< mirror for compaction (closed sessions erased)
};

}  // namespace ppd::net
