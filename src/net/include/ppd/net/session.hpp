// One client's state on the ppdd service: the config written by SET
// commands, uploaded netlist blobs, and the bounded in-flight window that
// implements backpressure.
//
// Admission control counts every query from acceptance until its result
// event has been written to the session's data channel (or until the
// session dies). A client that submits without draining its data channel
// therefore hits BUSY after `max_queue` queries — the queue cannot grow
// without bound no matter how the client behaves. Results completed before
// a data channel attaches are buffered (inside the same window) and
// flushed on attach, so CONTROL-then-DATA connection order is not racy.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ppd/net/query.hpp"
#include "ppd/net/socket.hpp"

namespace ppd::net {

struct SessionLimits {
  std::size_t max_queue = 8;           ///< in-flight window per session
  std::size_t max_upload_bytes = 4u << 20;
  std::size_t max_uploads = 64;
};

class Session {
 public:
  Session(std::string token, SessionLimits limits)
      : token_(std::move(token)), limits_(limits) {}

  [[nodiscard]] const std::string& token() const { return token_; }
  [[nodiscard]] const SessionLimits& limits() const { return limits_; }

  /// SET: validate the key against every query kind's key table (plus the
  /// lint upload selector) and remember the value. Throws ppd::ParseError
  /// on unknown keys so typos fail at SET time, not at query time.
  void set(const std::string& key, const std::string& value);

  /// Store an uploaded blob. Throws ppd::ParseError over the limits.
  void upload(const std::string& name, std::string text);

  /// Build the params for one query from the current config snapshot;
  /// `arg` is the upload name for lint queries.
  [[nodiscard]] QueryParams make_params(QueryKind kind,
                                        const std::string& arg) const;

  /// Try to admit one query into the in-flight window: returns the new
  /// query id, or 0 when the window is full (reply BUSY).
  [[nodiscard]] std::uint64_t admit();

  /// Deliver a finished query's event line: writes it to the data channel
  /// when one is attached (releasing its admission slot), otherwise buffers
  /// it until attach. Never throws — a dead data channel detaches.
  void deliver(std::string event_line);

  /// Attach the data channel and flush everything buffered. The session
  /// keeps a shared handle so delivery can outlive the reader thread.
  void attach_data(std::shared_ptr<TcpStream> stream);
  void detach_data();

  /// Push a non-result event (hello / drain) to an attached data channel.
  void notify(const std::string& event_line);

  /// Shut both channels down (server stop): wakes blocked readers.
  void shutdown();

  [[nodiscard]] std::size_t in_flight() const;
  /// Completed events still buffered, waiting for a data channel.
  [[nodiscard]] std::size_t undelivered() const;
  /// Total queries ever admitted on this session.
  [[nodiscard]] std::uint64_t queries_accepted() const;

  /// SUBSCRIBE state: period between pushed metrics events, in seconds
  /// (0 = not subscribed). Read by the server's push loop.
  void set_subscribe_period(double period_s);
  [[nodiscard]] double subscribe_period() const;

 private:
  /// False when no channel is attached or the write failed (channel dropped).
  bool write_event_locked(const std::string& line);

  const std::string token_;
  const SessionLimits limits_;

  mutable std::mutex mutex_;
  std::map<std::string, std::string> config_;
  std::map<std::string, std::string> uploads_;
  std::size_t upload_bytes_ = 0;
  std::uint64_t next_id_ = 0;
  std::size_t in_flight_ = 0;          ///< admitted, result not yet delivered
  double subscribe_period_s_ = 0.0;    ///< 0 = no metrics subscription
  std::deque<std::string> ready_;      ///< completed events awaiting a channel
  std::shared_ptr<TcpStream> data_;
};

}  // namespace ppd::net
