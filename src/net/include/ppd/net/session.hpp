// One client's state on the ppdd service: the config written by SET
// commands, uploaded netlist blobs, and the bounded in-flight window that
// implements backpressure.
//
// Admission control counts every query from acceptance until its result
// event has been written to the session's data channel (or until the
// session dies). A client that submits without draining its data channel
// therefore hits BUSY after `max_queue` queries — the queue cannot grow
// without bound no matter how the client behaves. Results completed before
// a data channel attaches are buffered (inside the same window) and
// flushed on attach, so CONTROL-then-DATA connection order is not racy.
//
// Hardening (PR 9): every per-session resource is capped (SessionLimits),
// violations throw the typed QuotaError (rendered as "ERR quota.<leaf>"
// on the wire, counted as net.quota.<leaf>), and the session carries the
// crash-recovery state — delivered ("acked") result events kept for
// idempotent re-issue, an in-flight id set for duplicate suppression, and
// attach/detach bookkeeping so a journal-backed session survives its
// control connection and can be RESUMEd.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "ppd/net/query.hpp"
#include "ppd/net/socket.hpp"
#include "ppd/util/error.hpp"

namespace ppd::net {

struct SessionLimits {
  std::size_t max_queue = 8;           ///< in-flight window per session
  std::size_t max_upload_bytes = 4u << 20;
  std::size_t max_uploads = 64;
  std::size_t max_line_bytes = 64u << 10;  ///< CONTROL line length cap
  /// Completed-but-undelivered result events buffered per session before
  /// admission refuses new queries (BUSY backlog). Bounds the ready queue
  /// for a client that submits but never drains its data channel.
  std::size_t max_backlog = 8;
};

/// A per-session resource cap was hit. `leaf()` names the quota — the
/// server replies "ERR quota.<leaf>: ..." and bumps "net.quota.<leaf>".
class QuotaError : public ParseError {
 public:
  QuotaError(const std::string& leaf, const std::string& detail)
      : ParseError("quota." + leaf + ": " + detail), leaf_(leaf) {}
  [[nodiscard]] const std::string& leaf() const { return leaf_; }

 private:
  std::string leaf_;
};

class Session {
 public:
  Session(std::string token, SessionLimits limits)
      : token_(std::move(token)), limits_(limits) {}

  [[nodiscard]] const std::string& token() const { return token_; }
  [[nodiscard]] const SessionLimits& limits() const { return limits_; }

  /// SET: validate the key against every query kind's key table (plus the
  /// lint upload selector) and remember the value. Throws ppd::ParseError
  /// on unknown keys so typos fail at SET time, not at query time.
  void set(const std::string& key, const std::string& value);

  /// Store an uploaded blob. Throws QuotaError over the limits and
  /// ParseError for malformed names (whitespace, path separators).
  void upload(const std::string& name, std::string text);

  /// Build the params for one query from the current config snapshot;
  /// `arg` is the upload name for lint queries.
  [[nodiscard]] QueryParams make_params(QueryKind kind,
                                        const std::string& arg) const;

  /// Try to admit one query into the in-flight window: returns the new
  /// query id, or 0 when the window or the undelivered backlog is full
  /// (reply BUSY). `backlog_full` (optional) distinguishes the two.
  [[nodiscard]] std::uint64_t admit(bool* backlog_full = nullptr);

  /// Re-issue admission for an explicit id (RESUME recovery path): admits
  /// the id unless it is already running or the window is full. Advances
  /// next_id_ past `id` so fresh admissions never collide.
  enum class Admit { kAdmitted, kDuplicate, kBusy };
  [[nodiscard]] Admit admit_with_id(std::uint64_t id);

  /// Deliver query `id`'s event line: writes it to the data channel when
  /// one is attached (releasing its admission slot and recording the ack),
  /// otherwise buffers it until attach. Never throws — a dead data channel
  /// detaches (counted as net.data.write_failed).
  void deliver(std::uint64_t id, std::string event_line);

  /// Push an already-acked event again (idempotent re-issue of an acked
  /// id). Consumes no admission slot. False when the backlog is full.
  [[nodiscard]] bool redeliver(std::uint64_t id);

  /// The journaled/delivered event for `id`, or nullptr when never acked
  /// (or already aged out of the bounded ack window).
  [[nodiscard]] const std::string* acked_event(std::uint64_t id) const;
  /// Ids with retained acked events, ascending (the RESUME reply).
  [[nodiscard]] std::vector<std::uint64_t> acked_ids() const;

  /// Restore journal-recovered state (server --recover). Bypasses quota
  /// re-checks for acks; config/uploads go through set()/upload() instead.
  void restore(std::uint64_t next_id,
               std::map<std::uint64_t, std::string> acked);

  /// Invoked (under the session lock) each time a result event is actually
  /// written to the data channel — the journal's ack hook.
  void set_ack_hook(
      std::function<void(std::uint64_t id, const std::string& event)> hook);

  /// Attach the data channel and flush everything buffered. The session
  /// keeps a shared handle so delivery can outlive the reader thread.
  /// `preamble` (the hello event, one line, no newline) is written first,
  /// in the same critical section — once a client has seen the hello, no
  /// concurrent notify()/deliver() can slip into the unattached gap.
  void attach_data(std::shared_ptr<TcpStream> stream,
                   const std::string& preamble = {});
  void detach_data();

  /// Control-connection bookkeeping: a journal-backed session outlives its
  /// control connection (detached => RESUMEable). `seq` orders detachments
  /// so the server can evict the oldest when too many linger.
  void set_control_attached(bool attached, std::uint64_t seq = 0);
  [[nodiscard]] bool control_attached() const;
  [[nodiscard]] std::uint64_t detached_seq() const;

  /// Push a non-result event (hello / drain) to an attached data channel.
  void notify(const std::string& event_line);

  /// Shut both channels down (server stop): wakes blocked readers.
  void shutdown();

  [[nodiscard]] std::size_t in_flight() const;
  /// Completed events still buffered, waiting for a data channel.
  [[nodiscard]] std::size_t undelivered() const;
  /// Total queries ever admitted on this session.
  [[nodiscard]] std::uint64_t queries_accepted() const;

  /// SUBSCRIBE state: period between pushed metrics events, in seconds
  /// (0 = not subscribed). Read by the server's push loop.
  void set_subscribe_period(double period_s);
  [[nodiscard]] double subscribe_period() const;

 private:
  struct Ready {
    std::uint64_t id = 0;
    std::string line;
    bool holds_slot = true;  ///< false for redelivered (already-acked) events
  };

  /// False when no channel is attached or the write failed (channel dropped).
  bool write_event_locked(const std::string& line);
  void record_ack_locked(std::uint64_t id, const std::string& line);

  const std::string token_;
  const SessionLimits limits_;

  mutable std::mutex mutex_;
  std::map<std::string, std::string> config_;
  std::map<std::string, std::string> uploads_;
  std::size_t upload_bytes_ = 0;
  std::uint64_t next_id_ = 0;
  std::size_t in_flight_ = 0;          ///< admitted, result not yet delivered
  double subscribe_period_s_ = 0.0;    ///< 0 = no metrics subscription
  std::deque<Ready> ready_;            ///< completed events awaiting a channel
  std::shared_ptr<TcpStream> data_;
  std::set<std::uint64_t> inflight_ids_;
  std::map<std::uint64_t, std::string> acked_;  ///< bounded (kMaxAckedKept)
  std::function<void(std::uint64_t, const std::string&)> ack_hook_;
  bool control_attached_ = true;
  std::uint64_t detached_seq_ = 0;
};

}  // namespace ppd::net
