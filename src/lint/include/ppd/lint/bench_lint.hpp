// Lenient .bench front end for static analysis.
//
// Unlike ppd::logic::parse_bench — which stops at the first malformed line
// or dangling reference — this scanner reads the whole file, records every
// defect it sees, builds the neutral NetGraph (placeholder nodes stand in
// for undriven references, the first driver wins on multi-driven nets) and
// then runs the structural checks of graph.hpp. It therefore diagnoses
// *all* problems of a bad netlist in one pass, with file:line locations.
//
// Front-end codes (on top of the PPD00x structural set):
//   PPD012 warning duplicate OUTPUT declaration
//   PPD013 error   syntax error (missing ')', missing '=', unknown type,
//                  empty operand, ...)
//   PPD014 error   OUTPUT declares a net that is never defined
#pragma once

#include <string>

#include "ppd/lint/diagnostic.hpp"
#include "ppd/lint/graph.hpp"

namespace ppd::lint {

struct BenchLintOptions {
  GraphLintOptions graph;
};

/// Lint .bench text. `source` names the input in diagnostics.
[[nodiscard]] Report lint_bench_text(const std::string& text,
                                     const std::string& source = "<string>",
                                     const BenchLintOptions& options = {});

/// Lint a .bench file from disk; a missing/unreadable file is itself an
/// error-severity diagnostic (PPD013), not an exception.
[[nodiscard]] Report lint_bench_file(const std::string& path,
                                     const BenchLintOptions& options = {});

}  // namespace ppd::lint
