// Structured static-analysis diagnostics — the common currency of every
// ppd::lint check and of `ppdtool lint`.
//
// A Diagnostic carries a stable machine-readable code ("PPD0xx" netlist,
// "PPD1xx" electrical, "PPD2xx" pulse-test config), a severity, a source
// location ("file:line" or a net/device name), a human message and an
// actionable hint. Checks append to a Report; callers filter by severity
// threshold / per-code suppression and render through the text or JSON
// reporter. Load-time gates (load_bench_file, validate_circuit) throw
// LintError — a ParseError subclass carrying the full report — when any
// error-severity finding survives filtering, so existing catch sites keep
// working while new ones can inspect the structured findings.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ppd/util/error.hpp"

namespace ppd::lint {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s);
/// Parse "note" / "warning" / "error" (case-insensitive); throws ParseError.
[[nodiscard]] Severity severity_from_string(const std::string& s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;      ///< stable id, e.g. "PPD001"
  std::string location;  ///< "file:line", net name, device name, ... (may be empty)
  std::string message;   ///< what is wrong
  std::string hint;      ///< how to fix it (may be empty)
};

/// Every stable diagnostic code any check can emit, sorted (PPD0xx
/// netlist, PPD1xx electrical, PPD2xx pulse-config, PPD3xx static
/// timing/testability). New rules must be registered here — suppression
/// validation rejects anything else.
[[nodiscard]] const std::vector<std::string>& known_codes();
[[nodiscard]] bool is_known_code(const std::string& code);

/// Parse a comma-separated suppression list ("PPD004,PPD107") into codes,
/// trimming whitespace and dropping empty fields. Throws ParseError on a
/// malformed or unknown code, so a typo in `--suppress` is a hard error
/// instead of a silently ineffective filter.
[[nodiscard]] std::vector<std::string> parse_suppress_list(
    const std::string& csv);

/// Filtering knobs shared by every lint entry point.
struct LintOptions {
  /// Diagnostics below this severity are dropped by filtered().
  Severity min_severity = Severity::kNote;
  /// Codes to suppress entirely (exact match, e.g. {"PPD004"}).
  std::vector<std::string> suppress;

  [[nodiscard]] bool keeps(const Diagnostic& d) const;
};

class Report {
 public:
  void add(Diagnostic d);
  void add(Severity severity, std::string code, std::string location,
           std::string message, std::string hint = "");
  /// Append every diagnostic of `other`.
  void merge(const Report& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] bool has_errors() const { return count(Severity::kError) > 0; }

  /// Copy with the options' severity threshold and suppressions applied.
  [[nodiscard]] Report filtered(const LintOptions& options) const;

  /// One-line summary, e.g. "2 errors, 1 warning, 3 notes".
  [[nodiscard]] std::string summary() const;

  /// Throw LintError when the report holds error-severity findings.
  void throw_on_error(const std::string& subject) const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Raised by load-time validation when a lint pass finds error-severity
/// defects. Derives from ParseError: callers that already handle malformed
/// input keep working unchanged.
class LintError : public ParseError {
 public:
  LintError(const std::string& subject, Report report);

  [[nodiscard]] const Report& report() const { return report_; }

 private:
  Report report_;
};

/// Human-readable rendering, one diagnostic per line:
///   error PPD001 [loc]: message (hint: ...)
void write_text(std::ostream& os, const Report& report);

/// Machine-readable rendering:
///   {"diagnostics":[{"severity":...,"code":...,...}],"errors":N,...}
void write_json(std::ostream& os, const Report& report);

[[nodiscard]] std::string to_text(const Report& report);
[[nodiscard]] std::string to_json(const Report& report);

}  // namespace ppd::lint
