// Electrical static analysis over a neutral device-graph IR.
//
// ppd::spice adapts a built Circuit into an ElecGraph (spice/lint.hpp);
// the deck scanner below builds one straight from SPICE-deck text (the
// dialect ppd::spice::write_spice emits), so decks can be vetted before —
// or without — constructing a Circuit whose device constructors would
// reject bad values outright.
//
// Checks (stable codes):
//   PPD101 error   device group with no connection to ground (island)
//   PPD102 warning node with no DC path to ground (gmin-dependent OP)
//   PPD103 error   non-positive resistance
//   PPD104 error   non-positive capacitance
//   PPD105 error   bad MOSFET parameters (W/L/KP <= 0, wrong-sign VT0)
//   PPD106 error   voltage-source loop
//   PPD107 warning physically implausible value (R/C/W/L out of range)
//   PPD108 warning circuit has no sources
//   PPD109 error   node touched by no device (singular MNA row)
//   PPD110 error   deck syntax error
#pragma once

#include <string>
#include <vector>

#include "ppd/lint/diagnostic.hpp"

namespace ppd::lint {

enum class ElecKind { kResistor, kCapacitor, kVsource, kIsource, kMosfet };

struct ElecDevice {
  ElecKind kind = ElecKind::kResistor;
  std::string name;
  std::vector<int> nodes;  ///< 0 = ground; R/C/V/I: 2 terminals, M: d,g,s
  double value = 0.0;      ///< ohms / farads (unused for sources)
  // MOSFET-only:
  double w = 0.0, l = 0.0, kp = 0.0, vt0 = 0.0;
  bool is_pmos = false;
  int line = 0;            ///< 1-based deck line, 0 = unknown
};

struct ElecGraph {
  std::string source;                   ///< file/subject name for diagnostics
  std::vector<std::string> node_names;  ///< index = node id; [0] = ground
  std::vector<ElecDevice> devices;

  [[nodiscard]] std::string where(const ElecDevice& d) const;
};

struct ElecLintOptions {
  double min_resistance = 0.1;      ///< below: PPD107 (likely a unit slip)
  double max_resistance = 1e12;
  double min_capacitance = 1e-18;
  double max_capacitance = 1e-6;
  double min_geometry = 10e-9;      ///< MOSFET W/L lower bound [m]
  double max_geometry = 1e-3;
};

/// Run every electrical check over `graph`.
[[nodiscard]] Report lint_elec(const ElecGraph& graph,
                               const ElecLintOptions& options = {});

/// Scan SPICE-deck text (R/C/V/I/M cards, .model/.tran/.end ignored) into
/// an ElecGraph and lint it. Unknown or malformed cards raise PPD110.
[[nodiscard]] Report lint_spice_deck_text(const std::string& text,
                                          const std::string& source = "<string>",
                                          const ElecLintOptions& options = {});

/// Lint a deck file from disk; an unreadable file is a PPD110 diagnostic.
[[nodiscard]] Report lint_spice_deck_file(const std::string& path,
                                          const ElecLintOptions& options = {});

}  // namespace ppd::lint
