// Neutral gate-graph IR for structural netlist lint.
//
// ppd::lint sits below ppd::logic so that load-time validation does not
// create a dependency cycle: the .bench front end (bench_lint.hpp) builds
// this IR straight from text — including text the strict parser rejects —
// and ppd::logic adapts an already-built Netlist into it (logic/lint.hpp).
//
// Checks (stable codes):
//   PPD001 error   combinational cycle (Tarjan SCC)
//   PPD002 error   undriven net (referenced, never driven)
//   PPD003 error   multi-driven net
//   PPD004 warning floating primary input (drives nothing)
//   PPD005 warning dead gate (cannot reach any primary output)
//   PPD006 warning unreachable gate (no primary input in its fanin cone)
//   PPD007 note    fanout histogram
//   PPD008 warning excessive fanout
//   PPD010 error   no primary outputs
//   PPD011 error   no primary inputs
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ppd/lint/diagnostic.hpp"

namespace ppd::lint {

/// One net/gate of the neutral graph. A net is *undriven* when it is
/// neither a primary input nor defined by a gate (the front ends create
/// placeholder nodes for such dangling references).
struct GraphNode {
  std::string name;
  std::string kind;               ///< gate type label for messages ("NAND", ...)
  std::vector<std::size_t> fanin; ///< indices into NetGraph::nodes
  bool is_input = false;          ///< declared primary input
  bool is_output = false;         ///< declared primary output
  bool driven = false;            ///< defined by a gate line (or is_input)
  /// Drivers seen by the front end: INPUT declarations and gate definitions
  /// both count. > 1 raises PPD003 (the fanin kept is the first driver's).
  int driver_count = 0;
  int line = 0;                   ///< 1-based source line, 0 = unknown
};

struct NetGraph {
  std::string source;  ///< file name for diagnostics (may be empty)
  std::vector<GraphNode> nodes;

  /// Location string for node `i`: "file:line" when known, else the name.
  [[nodiscard]] std::string where(std::size_t i) const;
};

struct GraphLintOptions {
  /// Fanout above this raises PPD008.
  std::size_t max_fanout = 32;
  /// Emit the PPD007 fanout-histogram note.
  bool fanout_histogram = true;
};

/// Run every structural check over `graph`.
[[nodiscard]] Report lint_graph(const NetGraph& graph,
                                const GraphLintOptions& options = {});

}  // namespace ppd::lint
