#include "ppd/lint/bench_lint.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "ppd/util/strings.hpp"

namespace ppd::lint {

namespace {

bool known_gate_type(std::string_view name) {
  using util::iequals;
  return iequals(name, "BUF") || iequals(name, "BUFF") ||
         iequals(name, "NOT") || iequals(name, "INV") || iequals(name, "AND") ||
         iequals(name, "OR") || iequals(name, "NAND") || iequals(name, "NOR") ||
         iequals(name, "XOR") || iequals(name, "XNOR");
}

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string source) { graph_.source = std::move(source); }

  std::size_t get_or_create(const std::string& name) {
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    const std::size_t id = graph_.nodes.size();
    GraphNode node;
    node.name = name;
    graph_.nodes.push_back(std::move(node));
    by_name_.emplace(name, id);
    return id;
  }

  NetGraph& graph() { return graph_; }

 private:
  NetGraph graph_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace

Report lint_bench_text(const std::string& text, const std::string& source,
                       const BenchLintOptions& options) {
  Report report;
  GraphBuilder builder(source);

  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  std::unordered_map<std::string, int> output_decl_line;
  std::vector<std::pair<std::string, int>> output_decls;

  while (std::getline(is, raw)) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::string here = source + ":" + std::to_string(line_no);

    const std::string upper = util::to_upper(line);
    if (util::starts_with(upper, "INPUT(") || util::starts_with(upper, "OUTPUT(")) {
      const bool is_input = util::starts_with(upper, "INPUT(");
      const std::size_t open = is_input ? 6 : 7;
      const auto close = line.find(')');
      if (close == std::string_view::npos || close < open) {
        report.add(Severity::kError, "PPD013", here,
                   "missing ')' in " + std::string(is_input ? "INPUT" : "OUTPUT") +
                       " declaration");
        continue;
      }
      const std::string name{util::trim(line.substr(open, close - open))};
      if (name.empty()) {
        report.add(Severity::kError, "PPD013", here, "empty signal name");
        continue;
      }
      const std::size_t id = builder.get_or_create(name);
      GraphNode& node = builder.graph().nodes[id];
      if (is_input) {
        node.is_input = true;
        node.driven = true;
        ++node.driver_count;
        if (node.line == 0) node.line = line_no;
      } else {
        const auto prev = output_decl_line.find(name);
        if (prev != output_decl_line.end())
          report.add(Severity::kWarning, "PPD012", here,
                     "duplicate OUTPUT declaration for '" + name +
                         "' (first on line " + std::to_string(prev->second) + ")");
        else
          output_decl_line.emplace(name, line_no);
        node.is_output = true;
        output_decls.emplace_back(name, line_no);
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      report.add(Severity::kError, "PPD013", here,
                 "expected 'net = TYPE(args)' assignment");
      continue;
    }
    const std::string out_name{util::trim(line.substr(0, eq))};
    const std::string_view rhs = util::trim(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (out_name.empty()) {
      report.add(Severity::kError, "PPD013", here, "empty gate output name");
      continue;
    }
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      report.add(Severity::kError, "PPD013", here, "expected TYPE(args)");
      continue;
    }
    const std::string type{util::trim(rhs.substr(0, open))};
    if (!known_gate_type(type)) {
      report.add(Severity::kError, "PPD013", here,
                 "unknown gate type '" + type + "'",
                 "use BUF|NOT|AND|OR|NAND|NOR|XOR|XNOR");
      continue;
    }
    std::vector<std::size_t> fanin;
    bool operands_ok = true;
    for (const auto& arg :
         util::split(std::string(rhs.substr(open + 1, close - open - 1)), ',')) {
      const auto trimmed = util::trim(arg);
      if (trimmed.empty()) {
        report.add(Severity::kError, "PPD013", here, "empty gate operand");
        operands_ok = false;
        break;
      }
      fanin.push_back(builder.get_or_create(std::string(trimmed)));
    }
    if (!operands_ok) continue;
    if (fanin.empty()) {
      report.add(Severity::kError, "PPD013", here,
                 "gate '" + out_name + "' has no operands");
      continue;
    }
    const std::size_t id = builder.get_or_create(out_name);
    GraphNode& node = builder.graph().nodes[id];
    ++node.driver_count;
    if (!node.driven) {
      // First driver wins; later drivers are reported as PPD003.
      node.driven = true;
      node.kind = util::to_upper(type);
      node.fanin = std::move(fanin);
      node.line = line_no;
    }
  }

  // PPD014 — OUTPUT declarations that never get a definition. (The
  // structural pass would also flag them as PPD002 when they feed nothing,
  // but an explicit code matches what the user wrote.)
  for (const auto& [name, decl_line] : output_decls) {
    const std::size_t id = builder.get_or_create(name);
    if (!builder.graph().nodes[id].driven)
      report.add(Severity::kError, "PPD014",
                 source + ":" + std::to_string(decl_line),
                 "OUTPUT '" + name + "' is never defined",
                 "define it with a gate or remove the declaration");
  }

  report.merge(lint_graph(builder.graph(), options.graph));
  return report;
}

Report lint_bench_file(const std::string& path, const BenchLintOptions& options) {
  std::ifstream in(path);
  if (!in) {
    Report report;
    report.add(Severity::kError, "PPD013", path, "cannot open .bench file");
    return report;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return lint_bench_text(os.str(), path, options);
}

}  // namespace ppd::lint
