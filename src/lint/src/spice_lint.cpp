#include "ppd/lint/spice_lint.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>

#include "ppd/util/strings.hpp"

namespace ppd::lint {

std::string ElecGraph::where(const ElecDevice& d) const {
  if (d.line > 0 && !source.empty())
    return source + ":" + std::to_string(d.line);
  if (d.line > 0) return "line " + std::to_string(d.line);
  return d.name;
}

namespace {

/// Plain union-find over node ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  /// Returns false when a and b were already connected.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

std::string format_value(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void check_values(const ElecGraph& g, const ElecLintOptions& opt,
                  Report& report) {
  for (const ElecDevice& d : g.devices) {
    switch (d.kind) {
      case ElecKind::kResistor:
        if (d.value <= 0.0)
          report.add(Severity::kError, "PPD103", g.where(d),
                     "resistor '" + d.name + "' has non-positive value " +
                         format_value(d.value) + " ohm",
                     "resistances must be > 0; model a short with a vsource");
        else if (d.value < opt.min_resistance || d.value > opt.max_resistance)
          report.add(Severity::kWarning, "PPD107", g.where(d),
                     "resistor '" + d.name + "' value " + format_value(d.value) +
                         " ohm is physically implausible",
                     "check the units (expected ohms)");
        break;
      case ElecKind::kCapacitor:
        if (d.value <= 0.0)
          report.add(Severity::kError, "PPD104", g.where(d),
                     "capacitor '" + d.name + "' has non-positive value " +
                         format_value(d.value) + " F");
        else if (d.value < opt.min_capacitance || d.value > opt.max_capacitance)
          report.add(Severity::kWarning, "PPD107", g.where(d),
                     "capacitor '" + d.name + "' value " + format_value(d.value) +
                         " F is physically implausible",
                     "check the units (expected farads)");
        break;
      case ElecKind::kMosfet: {
        if (d.w <= 0.0 || d.l <= 0.0)
          report.add(Severity::kError, "PPD105", g.where(d),
                     "MOSFET '" + d.name + "' has non-positive W or L (W=" +
                         format_value(d.w) + ", L=" + format_value(d.l) + ")");
        else if (d.w < opt.min_geometry || d.w > opt.max_geometry ||
                 d.l < opt.min_geometry || d.l > opt.max_geometry)
          report.add(Severity::kWarning, "PPD107", g.where(d),
                     "MOSFET '" + d.name + "' geometry W=" + format_value(d.w) +
                         " L=" + format_value(d.l) + " is out of process range",
                     "check the units (expected meters)");
        if (d.kp <= 0.0)
          report.add(Severity::kError, "PPD105", g.where(d),
                     "MOSFET '" + d.name + "' has non-positive KP " +
                         format_value(d.kp));
        if ((d.is_pmos && d.vt0 >= 0.0) || (!d.is_pmos && d.vt0 <= 0.0))
          report.add(Severity::kError, "PPD105", g.where(d),
                     std::string("MOSFET '") + d.name + "' is " +
                         (d.is_pmos ? "PMOS" : "NMOS") + " but VT0=" +
                         format_value(d.vt0) + " has the wrong sign");
        break;
      }
      case ElecKind::kVsource:
      case ElecKind::kIsource:
        break;
    }
  }
}

void check_topology(const ElecGraph& g, Report& report) {
  const std::size_t n = g.node_names.size();
  if (n == 0) return;

  const auto node_label = [&](int id) {
    return static_cast<std::size_t>(id) < g.node_names.size()
               ? g.node_names[static_cast<std::size_t>(id)]
               : "node#" + std::to_string(id);
  };

  UnionFind any_path(n);     // every device ties all its terminals together
  UnionFind dc_path(n);      // only DC-conducting edges
  UnionFind vsource_net(n);  // voltage-source edges, for loop detection
  std::vector<char> touched(n, 0);
  std::size_t sources = 0;

  for (const ElecDevice& d : g.devices) {
    for (std::size_t i = 0; i < d.nodes.size(); ++i) {
      const auto a = static_cast<std::size_t>(d.nodes[i]);
      if (a >= n) continue;  // deck scanner never produces this; be safe
      touched[a] = 1;
      if (i > 0) any_path.unite(static_cast<std::size_t>(d.nodes[0]), a);
    }
    switch (d.kind) {
      case ElecKind::kResistor:
        dc_path.unite(static_cast<std::size_t>(d.nodes[0]),
                      static_cast<std::size_t>(d.nodes[1]));
        break;
      case ElecKind::kVsource: {
        ++sources;
        const auto a = static_cast<std::size_t>(d.nodes[0]);
        const auto b = static_cast<std::size_t>(d.nodes[1]);
        dc_path.unite(a, b);
        if (!vsource_net.unite(a, b))
          report.add(Severity::kError, "PPD106", g.where(d),
                     "voltage source '" + d.name + "' closes a loop of "
                     "voltage sources between '" + node_label(d.nodes[0]) +
                         "' and '" + node_label(d.nodes[1]) + "'",
                     "the branch currents are underdetermined (singular MNA)");
        break;
      }
      case ElecKind::kIsource:
        ++sources;
        break;
      case ElecKind::kMosfet:
        // Channel conducts drain<->source; the gate is insulated.
        dc_path.unite(static_cast<std::size_t>(d.nodes[0]),
                      static_cast<std::size_t>(d.nodes[2]));
        break;
      case ElecKind::kCapacitor:
        break;  // open in DC
    }
  }

  if (sources == 0 && !g.devices.empty())
    report.add(Severity::kWarning, "PPD108", g.source,
               "circuit has no voltage or current source",
               "the operating point is identically zero");

  // PPD109 — nodes no device touches produce an all-zero MNA row.
  for (std::size_t v = 1; v < n; ++v)
    if (!touched[v])
      report.add(Severity::kError, "PPD109", node_label(static_cast<int>(v)),
                 "node '" + node_label(static_cast<int>(v)) +
                     "' is not connected to any device",
                 "remove the node or wire a device to it");

  // PPD101 — connected groups with no path (of any kind) to ground.
  // Report once per island, naming a representative node.
  const std::size_t ground_root = any_path.find(0);
  std::vector<char> island_reported(n, 0);
  for (std::size_t v = 1; v < n; ++v) {
    if (!touched[v]) continue;
    const std::size_t root = any_path.find(v);
    if (root == ground_root || island_reported[root]) continue;
    island_reported[root] = 1;
    std::string members;
    std::size_t count = 0;
    for (std::size_t w = 1; w < n; ++w)
      if (touched[w] && any_path.find(w) == root) {
        if (++count <= 6) {
          if (!members.empty()) members += ", ";
          members += node_label(static_cast<int>(w));
        }
      }
    if (count > 6) members += ", ... (" + std::to_string(count) + " nodes)";
    report.add(Severity::kError, "PPD101", node_label(static_cast<int>(v)),
               "island of " + std::to_string(count) +
                   " node(s) with no connection to ground: " + members,
               "every subcircuit needs a ground reference");
  }

  // PPD102 — grounded nodes whose only paths to ground are capacitive or
  // through a gate: the OP depends on the gmin leak.
  for (std::size_t v = 1; v < n; ++v) {
    if (!touched[v]) continue;
    if (any_path.find(v) != ground_root) continue;  // already PPD101
    if (dc_path.find(v) == dc_path.find(0)) continue;
    report.add(Severity::kWarning, "PPD102",
               node_label(static_cast<int>(v)),
               "node '" + node_label(static_cast<int>(v)) +
                   "' has no DC path to ground",
               "its operating point rests on the gmin leak");
  }
}

}  // namespace

Report lint_elec(const ElecGraph& graph, const ElecLintOptions& options) {
  Report report;
  check_values(graph, options, report);
  check_topology(graph, report);
  return report;
}

// --------------------------------------------------------------- deck scan

namespace {

/// Parse a SPICE number with the usual magnitude suffixes. Returns false
/// when no number could be read at all.
bool parse_spice_number(const std::string& tok, double* out) {
  const char* begin = tok.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  double scale = 1.0;
  const std::string suffix = util::to_upper(std::string_view(end));
  if (util::starts_with(suffix, "MEG")) scale = 1e6;
  else if (util::starts_with(suffix, "T")) scale = 1e12;
  else if (util::starts_with(suffix, "G")) scale = 1e9;
  else if (util::starts_with(suffix, "K")) scale = 1e3;
  else if (util::starts_with(suffix, "M")) scale = 1e-3;
  else if (util::starts_with(suffix, "U")) scale = 1e-6;
  else if (util::starts_with(suffix, "N")) scale = 1e-9;
  else if (util::starts_with(suffix, "P")) scale = 1e-12;
  else if (util::starts_with(suffix, "F")) scale = 1e-15;
  *out = v * scale;
  return true;
}

struct DeckModel {
  bool is_pmos = false;
  double vt0 = 0.45;
  double kp = 170e-6;
};

/// "key=value" → value parsed as a SPICE number, else nullopt-ish false.
bool key_value(const std::string& tok, const std::string& key, double* out) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) return false;
  if (!util::iequals(util::trim(tok.substr(0, eq)), key)) return false;
  return parse_spice_number(std::string(util::trim(tok.substr(eq + 1))), out);
}

}  // namespace

Report lint_spice_deck_text(const std::string& text, const std::string& source,
                            const ElecLintOptions& options) {
  Report report;
  ElecGraph graph;
  graph.source = source;
  graph.node_names.push_back("0");
  std::map<std::string, int> node_ids;  // name -> id (ground handled apart)
  std::map<std::string, DeckModel> models;
  struct PendingMos {
    ElecDevice device;
    std::string model;
  };
  std::vector<PendingMos> pending_mos;

  const auto node_id = [&](const std::string& name) {
    if (name == "0" || util::iequals(name, "gnd")) return 0;
    const auto it = node_ids.find(name);
    if (it != node_ids.end()) return it->second;
    const int id = static_cast<int>(graph.node_names.size());
    graph.node_names.push_back(name);
    node_ids.emplace(name, id);
    return id;
  };

  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  bool first_line = true;
  while (std::getline(is, raw)) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    const std::string here = source + ":" + std::to_string(line_no);
    if (line.empty() || line.front() == '*') {
      first_line = false;
      continue;
    }
    // SPICE treats the very first line as the title even without '*'.
    if (first_line) {
      first_line = false;
      if (line.front() != '.' && line.front() != 'R' && line.front() != 'C' &&
          line.front() != 'V' && line.front() != 'I' && line.front() != 'M')
        continue;
    }
    first_line = false;

    if (line.front() == '.') {
      const auto toks = util::split_ws(line);
      if (util::iequals(toks[0], ".model") && toks.size() >= 3) {
        DeckModel m;
        m.is_pmos = util::iequals(toks[2], "PMOS");
        for (const auto& tok : toks) {
          double v = 0.0;
          if (key_value(tok, "vto", &v)) m.vt0 = v;
          if (key_value(tok, "kp", &v)) m.kp = v;
        }
        models.emplace(util::to_upper(toks[1]), m);
      }
      continue;  // .tran/.end/.options are simulator directives, not devices
    }

    const auto toks = util::split_ws(line);
    const char card = static_cast<char>(std::toupper(line.front()));
    ElecDevice d;
    d.name = toks[0];
    d.line = line_no;
    switch (card) {
      case 'R':
      case 'C': {
        if (toks.size() < 4) {
          report.add(Severity::kError, "PPD110", here,
                     "malformed " + std::string(1, card) +
                         " card: expected 'name n1 n2 value'");
          continue;
        }
        d.kind = card == 'R' ? ElecKind::kResistor : ElecKind::kCapacitor;
        d.nodes = {node_id(toks[1]), node_id(toks[2])};
        if (!parse_spice_number(toks[3], &d.value)) {
          report.add(Severity::kError, "PPD110", here,
                     "cannot parse value '" + toks[3] + "'");
          continue;
        }
        graph.devices.push_back(std::move(d));
        break;
      }
      case 'V':
      case 'I': {
        if (toks.size() < 3) {
          report.add(Severity::kError, "PPD110", here,
                     "malformed source card: expected 'name n+ n- spec'");
          continue;
        }
        d.kind = card == 'V' ? ElecKind::kVsource : ElecKind::kIsource;
        d.nodes = {node_id(toks[1]), node_id(toks[2])};
        graph.devices.push_back(std::move(d));
        break;
      }
      case 'M': {
        if (toks.size() < 6) {
          report.add(Severity::kError, "PPD110", here,
                     "malformed M card: expected 'name d g s b model w=... l=...'");
          continue;
        }
        d.kind = ElecKind::kMosfet;
        d.nodes = {node_id(toks[1]), node_id(toks[2]), node_id(toks[3])};
        for (const auto& tok : toks) {
          double v = 0.0;
          if (key_value(tok, "w", &v)) d.w = v;
          if (key_value(tok, "l", &v)) d.l = v;
        }
        pending_mos.push_back({std::move(d), util::to_upper(toks[5])});
        break;
      }
      default:
        report.add(Severity::kError, "PPD110", here,
                   "unknown card '" + std::string(1, line.front()) + "'",
                   "supported cards: R, C, V, I, M and . directives");
    }
  }

  for (auto& [device, model_name] : pending_mos) {
    const auto it = models.find(model_name);
    if (it == models.end()) {
      report.add(Severity::kError, "PPD110", graph.where(device),
                 "MOSFET '" + device.name + "' references undefined model '" +
                     model_name + "'");
      continue;
    }
    device.is_pmos = it->second.is_pmos;
    device.vt0 = it->second.vt0;
    device.kp = it->second.kp;
    graph.devices.push_back(std::move(device));
  }

  report.merge(lint_elec(graph, options));
  return report;
}

Report lint_spice_deck_file(const std::string& path,
                            const ElecLintOptions& options) {
  std::ifstream in(path);
  if (!in) {
    Report report;
    report.add(Severity::kError, "PPD110", path, "cannot open SPICE deck");
    return report;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return lint_spice_deck_text(os.str(), path, options);
}

}  // namespace ppd::lint
