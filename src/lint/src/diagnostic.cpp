#include "ppd/lint/diagnostic.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "ppd/util/strings.hpp"

namespace ppd::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

Severity severity_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "note")) return Severity::kNote;
  if (iequals(s, "warning")) return Severity::kWarning;
  if (iequals(s, "error")) return Severity::kError;
  throw ParseError("unknown severity: " + s + " (use note|warning|error)");
}

const std::vector<std::string>& known_codes() {
  static const std::vector<std::string> codes = [] {
    std::vector<std::string> c;
    const auto family = [&c](int base, std::initializer_list<int> nums) {
      for (int n : nums) {
        std::string s = std::to_string(base + n);
        c.push_back("PPD" + std::string(3 - s.size(), '0') + s);
      }
    };
    family(0, {1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14});  // netlist
    family(100, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});             // electrical
    family(200, {1, 2, 3, 4, 5, 6, 7});                       // pulse config
    family(300, {1, 2, 3, 4});                                // static timing
    return c;
  }();
  return codes;
}

bool is_known_code(const std::string& code) {
  const auto& codes = known_codes();
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

std::vector<std::string> parse_suppress_list(const std::string& csv) {
  std::vector<std::string> out;
  for (const std::string& field : util::split(csv, ',')) {
    const std::string code{util::trim(field)};
    if (code.empty()) continue;
    if (!is_known_code(code))
      throw ParseError("unknown diagnostic code in suppress list: '" + code +
                       "' (known codes are PPD001..PPD" +
                       known_codes().back().substr(3) + ", see ppdtool lint)");
    out.push_back(code);
  }
  return out;
}

bool LintOptions::keeps(const Diagnostic& d) const {
  if (d.severity < min_severity) return false;
  return std::find(suppress.begin(), suppress.end(), d.code) == suppress.end();
}

void Report::add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

void Report::add(Severity severity, std::string code, std::string location,
                 std::string message, std::string hint) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = std::move(hint);
  add(std::move(d));
}

void Report::merge(const Report& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

Report Report::filtered(const LintOptions& options) const {
  Report out;
  for (const Diagnostic& d : diagnostics_)
    if (options.keeps(d)) out.add(d);
  return out;
}

std::string Report::summary() const {
  const auto part = [](std::size_t n, const char* noun) {
    return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
  };
  return part(count(Severity::kError), "error") + ", " +
         part(count(Severity::kWarning), "warning") + ", " +
         part(count(Severity::kNote), "note");
}

void Report::throw_on_error(const std::string& subject) const {
  if (has_errors()) throw LintError(subject, *this);
}

namespace {

std::string error_what(const std::string& subject, const Report& report) {
  std::ostringstream os;
  os << subject << ": " << report.count(Severity::kError)
     << " lint error(s)\n";
  for (const Diagnostic& d : report.diagnostics())
    if (d.severity == Severity::kError) {
      os << "  " << d.code;
      if (!d.location.empty()) os << " [" << d.location << ']';
      os << ": " << d.message << '\n';
    }
  std::string s = os.str();
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

LintError::LintError(const std::string& subject, Report report)
    : ParseError(error_what(subject, report)), report_(std::move(report)) {}

void write_text(std::ostream& os, const Report& report) {
  for (const Diagnostic& d : report.diagnostics()) {
    os << severity_name(d.severity) << ' ' << d.code;
    if (!d.location.empty()) os << " [" << d.location << ']';
    os << ": " << d.message;
    if (!d.hint.empty()) os << " (hint: " << d.hint << ')';
    os << '\n';
  }
  os << "# " << report.summary() << '\n';
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_json(std::ostream& os, const Report& report) {
  os << "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!first) os << ',';
    first = false;
    os << "{\"severity\":";
    write_json_string(os, severity_name(d.severity));
    os << ",\"code\":";
    write_json_string(os, d.code);
    os << ",\"location\":";
    write_json_string(os, d.location);
    os << ",\"message\":";
    write_json_string(os, d.message);
    os << ",\"hint\":";
    write_json_string(os, d.hint);
    os << '}';
  }
  os << "],\"errors\":" << report.count(Severity::kError)
     << ",\"warnings\":" << report.count(Severity::kWarning)
     << ",\"notes\":" << report.count(Severity::kNote) << "}\n";
}

std::string to_text(const Report& report) {
  std::ostringstream os;
  write_text(os, report);
  return os.str();
}

std::string to_json(const Report& report) {
  std::ostringstream os;
  write_json(os, report);
  return os.str();
}

}  // namespace ppd::lint
