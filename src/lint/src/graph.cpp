#include "ppd/lint/graph.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ppd::lint {

std::string NetGraph::where(std::size_t i) const {
  const GraphNode& n = nodes[i];
  if (n.line > 0 && !source.empty())
    return source + ":" + std::to_string(n.line);
  if (n.line > 0) return "line " + std::to_string(n.line);
  return n.name;
}

namespace {

/// Iterative Tarjan strongly-connected components over the fanin graph.
/// Returns every SCC with more than one node (single-node self-loops are
/// returned too): each is a combinational cycle.
std::vector<std::vector<std::size_t>> combinational_cycles(const NetGraph& g) {
  const std::size_t n = g.nodes.size();
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  int next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge;  // next fanin edge to visit
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& fanin = g.nodes[f.node].fanin;
      if (f.edge < fanin.size()) {
        const std::size_t child = fanin[f.edge++];
        if (index[child] == -1) {
          index[child] = lowlink[child] = next_index++;
          stack.push_back(child);
          on_stack[child] = 1;
          frames.push_back({child, 0});
        } else if (on_stack[child]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[child]);
        }
        continue;
      }
      // Node finished: pop an SCC when it is a root.
      if (lowlink[f.node] == index[f.node]) {
        std::vector<std::size_t> scc;
        for (;;) {
          const std::size_t v = stack.back();
          stack.pop_back();
          on_stack[v] = 0;
          scc.push_back(v);
          if (v == f.node) break;
        }
        const bool self_loop =
            scc.size() == 1 &&
            std::find(fanin.begin(), fanin.end(), f.node) != fanin.end();
        if (scc.size() > 1 || self_loop) {
          std::reverse(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
      }
      const std::size_t done = f.node;
      frames.pop_back();
      if (!frames.empty())
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[done]);
    }
  }
  return sccs;
}

std::string join_names(const NetGraph& g, const std::vector<std::size_t>& ids,
                       std::size_t limit = 8) {
  std::string out;
  for (std::size_t k = 0; k < ids.size() && k < limit; ++k) {
    if (k != 0) out += " -> ";
    out += g.nodes[ids[k]].name;
  }
  if (ids.size() > limit) out += " -> ... (" + std::to_string(ids.size()) + " nets)";
  return out;
}

}  // namespace

Report lint_graph(const NetGraph& graph, const GraphLintOptions& options) {
  Report report;
  const std::size_t n = graph.nodes.size();

  std::size_t input_count = 0, output_count = 0;
  std::vector<std::vector<std::size_t>> fanout(n);
  for (std::size_t i = 0; i < n; ++i) {
    const GraphNode& node = graph.nodes[i];
    input_count += node.is_input ? 1 : 0;
    output_count += node.is_output ? 1 : 0;
    for (std::size_t f : node.fanin) fanout[f].push_back(i);
  }

  if (input_count == 0)
    report.add(Severity::kError, "PPD011", graph.source,
               "netlist declares no primary inputs",
               "add INPUT(...) declarations");
  if (output_count == 0)
    report.add(Severity::kError, "PPD010", graph.source,
               "netlist declares no primary outputs",
               "add OUTPUT(...) declarations");

  // PPD001 — combinational cycles.
  for (const auto& scc : combinational_cycles(graph))
    report.add(Severity::kError, "PPD001", graph.where(scc.front()),
               "combinational cycle: " + join_names(graph, scc),
               "break the loop with a register or rewire the feedback");

  for (std::size_t i = 0; i < n; ++i) {
    const GraphNode& node = graph.nodes[i];
    // PPD002 — referenced but never driven.
    if (!node.driven && !node.is_input && !fanout[i].empty()) {
      std::string users = graph.nodes[fanout[i].front()].name;
      if (fanout[i].size() > 1)
        users += " and " + std::to_string(fanout[i].size() - 1) + " more";
      report.add(Severity::kError, "PPD002", node.name,
                 "net '" + node.name + "' is used by " + users +
                     " but never driven",
                 "declare it as INPUT(...) or define it with a gate");
    }
    // PPD003 — more than one driver.
    if (node.driver_count > 1)
      report.add(Severity::kError, "PPD003", graph.where(i),
                 "net '" + node.name + "' has " +
                     std::to_string(node.driver_count) + " drivers",
                 "every net needs exactly one INPUT declaration or gate");
    // PPD004 — primary input feeding nothing.
    if (node.is_input && fanout[i].empty() && !node.is_output)
      report.add(Severity::kWarning, "PPD004", graph.where(i),
                 "primary input '" + node.name + "' drives no gate",
                 "remove the INPUT declaration or connect it");
  }

  // PPD005/PPD006 — reachability in both directions. Undriven placeholder
  // nets are not treated as sources: a gate fed only through them is still
  // unreachable from the primary inputs.
  std::vector<char> from_pi(n, 0), to_po(n, 0);
  {
    std::vector<std::size_t> work;
    for (std::size_t i = 0; i < n; ++i)
      if (graph.nodes[i].is_input) {
        from_pi[i] = 1;
        work.push_back(i);
      }
    while (!work.empty()) {
      const std::size_t v = work.back();
      work.pop_back();
      for (std::size_t w : fanout[v])
        if (!from_pi[w]) {
          // A gate is PI-reachable as soon as any fanin is: pulses enter
          // through one input, the rest are side inputs.
          from_pi[w] = 1;
          work.push_back(w);
        }
    }
    for (std::size_t i = 0; i < n; ++i)
      if (graph.nodes[i].is_output) {
        to_po[i] = 1;
        work.push_back(i);
      }
    while (!work.empty()) {
      const std::size_t v = work.back();
      work.pop_back();
      for (std::size_t w : graph.nodes[v].fanin)
        if (!to_po[w]) {
          to_po[w] = 1;
          work.push_back(w);
        }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const GraphNode& node = graph.nodes[i];
    if (!node.driven || node.is_input) continue;  // reported above / N/A
    if (!from_pi[i])
      report.add(Severity::kWarning, "PPD006", graph.where(i),
                 "gate '" + node.name +
                     "' is unreachable from every primary input",
                 "no test stimulus can exercise it");
    if (!to_po[i])
      report.add(Severity::kWarning, "PPD005", graph.where(i),
                 "gate '" + node.name + "' cannot reach any primary output",
                 "dead logic: no fault on it is observable");
  }

  // PPD008 — excessive fanout; PPD007 — histogram note.
  std::map<std::size_t, std::size_t> histogram;
  std::size_t max_seen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!graph.nodes[i].driven && !graph.nodes[i].is_input) continue;
    const std::size_t deg = fanout[i].size();
    ++histogram[deg];
    max_seen = std::max(max_seen, deg);
    if (deg > options.max_fanout)
      report.add(Severity::kWarning, "PPD008", graph.where(i),
                 "net '" + graph.nodes[i].name + "' fans out to " +
                     std::to_string(deg) + " gates (limit " +
                     std::to_string(options.max_fanout) + ")",
                 "buffer the net; pulse attenuation grows with load");
  }
  if (options.fanout_histogram && n > 0) {
    std::ostringstream os;
    os << "fanout histogram (fanout:nets)";
    for (const auto& [deg, count] : histogram) os << ' ' << deg << ':' << count;
    os << ", max " << max_seen;
    report.add(Severity::kNote, "PPD007", graph.source, os.str());
  }

  return report;
}

}  // namespace ppd::lint
