// SCOAP testability measures (Goldstein): combinational 0/1
// controllability CC0/CC1 and observability CO per net, with saturating
// arithmetic. The screen uses them to price side-input justification —
// a path whose side inputs cannot be statically driven to their
// non-controlling values (infinite controllability) can never propagate
// the probe pulse and is rejected before any SPICE deck is built.
#pragma once

#include <cstdint>
#include <vector>

#include "ppd/logic/netlist.hpp"
#include "ppd/logic/paths.hpp"

namespace ppd::sta {

/// Saturating sentinel: a value that can never be justified/observed.
inline constexpr std::uint64_t kScoapInfinite = ~std::uint64_t{0};

/// Saturating add that absorbs kScoapInfinite.
[[nodiscard]] std::uint64_t scoap_add(std::uint64_t a, std::uint64_t b);

struct ScoapResult {
  std::vector<std::uint64_t> cc0;  ///< cost to drive the net to 0
  std::vector<std::uint64_t> cc1;  ///< cost to drive the net to 1
  std::vector<std::uint64_t> co;   ///< cost to observe the net at a PO
};

/// Compute CC0/CC1 forward and CO backward over the whole netlist.
/// PIs: CC0 = CC1 = 1. POs: CO = 0. Everything saturates at
/// kScoapInfinite instead of overflowing.
[[nodiscard]] ScoapResult compute_scoap(const logic::Netlist& netlist);

/// Total SCOAP cost to hold every side input along `path` at its
/// non-controlling value (AND/NAND sides at 1, OR/NOR sides at 0; XOR-class
/// and single-input gates cost nothing). kScoapInfinite means some side
/// input is statically unjustifiable and the path cannot be sensitized.
[[nodiscard]] std::uint64_t side_input_cost(const logic::Netlist& netlist,
                                            const ScoapResult& scoap,
                                            const logic::Path& path);

}  // namespace ppd::sta
