// Closed-interval arithmetic for static timing and pulse-survival bounds.
// Intervals carry [lo, hi] pairs of seconds; the STA propagates {min,max}
// arrival windows and the survival analysis propagates attainable
// pulse-width ranges, both under the same tiny type.
#pragma once

#include <algorithm>

namespace ppd::sta {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] static Interval point(double v) { return {v, v}; }

  [[nodiscard]] Interval operator+(double shift) const {
    return {lo + shift, hi + shift};
  }
  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] bool contains(double v) const { return lo <= v && v <= hi; }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Smallest interval covering both operands.
[[nodiscard]] inline Interval hull(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

}  // namespace ppd::sta
