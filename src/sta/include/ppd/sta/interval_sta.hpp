// Four-value interval STA: {min,max} x {rise,fall} arrival windows per net.
//
// The paper's target population is the set of paths whose slack exceeds the
// defect-induced delay; ppd::logic's single worst-case arrival pass cannot
// see how *much* of a net's timing is certain (a net fed by reconvergent
// short and long paths has a wide arrival window, and its true slack is a
// range, not a number) and collapses rise/fall delays through inverting
// gates, overstating slack on inverter-heavy paths. This pass tracks both:
//
//  * polarity — an inverting gate's rising output edge is caused by a
//    falling input edge and costs delay_rise (XOR/XNOR may be flipped by
//    either edge, so both polarities contribute);
//  * intervals — arrival[net].rise = [earliest, latest] time a rising edge
//    can appear at the net over all sensitizable input edges.
//
// On top of the windows sits a K-slackiest path enumerator: best-first
// branch-and-bound with per-(net, polarity) suffix lower bounds, so the
// highest-slack candidates come out without exhaustive path enumeration.
#pragma once

#include <cstdint>
#include <vector>

#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/paths.hpp"
#include "ppd/sta/interval.hpp"

namespace ppd::sta {

/// How a gate's output edge polarity relates to the causing input edge.
enum class EdgeCause {
  kSame,      // BUF/AND/OR: rising input edge -> rising output edge
  kInverted,  // NOT/NAND/NOR/XNOR-as-inverter: rising input -> falling output
  kEither,    // XOR/XNOR: any input edge may drive either output edge
};

[[nodiscard]] EdgeCause edge_cause(logic::LogicKind kind);

/// Rise/fall arrival (or slack) windows of one net.
struct EdgeTimes {
  Interval rise;
  Interval fall;

  [[nodiscard]] double latest() const { return std::max(rise.hi, fall.hi); }
  [[nodiscard]] double earliest() const { return std::min(rise.lo, fall.lo); }
};

struct IntervalStaResult {
  /// arrival[net].rise = [earliest, latest] rising-edge arrival from the
  /// primary inputs (PIs launch both polarities at t = 0).
  std::vector<EdgeTimes> arrival;
  /// Latest allowed arrival per polarity for the clock period (+inf when no
  /// output is reachable from the net with that polarity).
  std::vector<double> required_rise;
  std::vector<double> required_fall;
  /// slack[net] = [guaranteed, optimistic]: lo is the slack certain to be
  /// available whatever edge actually occurs (required - latest arrival,
  /// worst polarity); hi assumes every edge arrives at its earliest bound.
  /// Nets that reach no output are clamped against the clock period.
  std::vector<Interval> slack;
  double critical_delay = 0.0;  ///< max latest arrival over the outputs
  double clock_period = 0.0;

  [[nodiscard]] double slack_at(logic::NetId net) const;
};

/// Run the four-value STA. `clock_period` <= 0 means "use the critical
/// delay" (zero guaranteed slack on the critical path).
[[nodiscard]] IntervalStaResult run_interval_sta(
    const logic::Netlist& netlist, const logic::GateTimingLibrary& library,
    double clock_period = 0.0);

/// Worst-case (over launch polarity) delay of one concrete path, tracking
/// edge polarity gate by gate — the polarity-correct replacement for
/// "levels x max(delay_rise, delay_fall)".
[[nodiscard]] double path_delay_worst(const logic::Netlist& netlist,
                                      const logic::GateTimingLibrary& library,
                                      const logic::Path& path);

struct SlackPath {
  logic::Path path;
  double delay = 0.0;  ///< worst-case polarity-tracked path delay
  double slack = 0.0;  ///< clock_period - delay
};

struct SlackiestOptions {
  double clock_period = 0.0;       ///< <= 0: use the critical delay
  std::size_t node_budget = 1u << 18;  ///< branch-and-bound expansion cap
};

/// The `k` PI->PO paths of largest slack (= smallest worst-case delay),
/// best-first branch-and-bound on per-(net, polarity) suffix lower bounds.
/// Deterministic: sorted by (delay, path nets lexicographically).
[[nodiscard]] std::vector<SlackPath> k_slackiest_paths(
    const logic::Netlist& netlist, const logic::GateTimingLibrary& library,
    std::size_t k, const SlackiestOptions& options = {});

}  // namespace ppd::sta
