// Static pulse-survival bounds: interval composition of the calibrated
// GateTiming attenuation characteristic (ppd/logic/attenuation.hpp) along
// paths, under a relative parameter margin that brackets calibration and
// process uncertainty.
//
// The per-gate width map w' = f(w; w_block, w_pass, shrink) is nonincreasing
// in each of the three parameters for any fixed w, so the attainable output
// range over the margin box is reached at just two corners: all parameters
// scaled by (1 - margin) gives the optimistic (widest-output) bound, all by
// (1 + margin) the pessimistic one. Composing optimistic bounds backward
// along a path yields the *provable block threshold*: the smallest launch
// width that could possibly reach the target under any in-box parameters.
// A path whose threshold exceeds the generator ceiling is pulse-dead — no
// SPICE run can ever detect a fault through it — and may be screened out
// without risking a missed detection. Conversely a pessimistic forward
// bound above the sensing floor proves guaranteed survival.
#pragma once

#include <vector>

#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/paths.hpp"
#include "ppd/sta/interval.hpp"

namespace ppd::sta {

struct SurvivalOptions {
  double w_in_max = 1.2e-9;    ///< generator ceiling: widest launchable pulse
  double w_th_floor = 50e-12;  ///< sensing floor: narrowest detectable pulse
  /// Relative margin applied to (w_block, w_pass, shrink) in both
  /// directions. 0 trusts the library exactly.
  double margin = 0.25;
};

/// Output-width window of one gate for an input window, over the margin
/// box. Exact (corner-evaluated, see header comment), collapses to the
/// nominal map at margin = 0.
[[nodiscard]] Interval gate_pulse_bounds(const logic::GateTiming& t,
                                         const Interval& w_in, double margin);

/// Smallest input width that can possibly produce an output of width
/// >= `target` through one gate under optimistic in-box parameters
/// (closed-form inverse of the piecewise-linear map).
[[nodiscard]] double gate_required_width(const logic::GateTiming& t,
                                         double target, double margin);

/// Forward-composed output window at the path's PO for a launch window
/// injected at the path input.
[[nodiscard]] Interval path_pulse_bounds(const logic::GateTimingLibrary& lib,
                                         const logic::Netlist& netlist,
                                         const logic::Path& path,
                                         const Interval& w_in, double margin);

/// Provable block threshold of a path: the smallest launch width that can
/// possibly reach the PO with width >= `target` (backward-composed
/// optimistic inverses). A launch budget below this is proof of
/// pulse-death along the path.
[[nodiscard]] double path_required_width(const logic::GateTimingLibrary& lib,
                                         const logic::Netlist& netlist,
                                         const logic::Path& path,
                                         double target, double margin);

struct SurvivalResult {
  /// need[net] = smallest pulse width present *at* the net that can
  /// possibly reach some primary output with width >= w_th_floor
  /// (optimistic corners, min over all downstream routes). +inf when no
  /// route can carry any pulse wide enough.
  std::vector<double> need;
  SurvivalOptions options;

  /// A fault site is statically pulse-dead when even the widest
  /// launchable pulse cannot satisfy its need.
  [[nodiscard]] bool dead(logic::NetId net) const;
};

/// Backward need pass over the whole netlist (reverse-topological min over
/// fanouts), pricing every potential fault site at once.
[[nodiscard]] SurvivalResult compute_survival(
    const logic::Netlist& netlist, const logic::GateTimingLibrary& library,
    const SurvivalOptions& options = {});

}  // namespace ppd::sta
