// The static path screen: the gate between path enumeration and the
// electrical layer. Every candidate path gets a verdict —
//
//   kKept           survives every enabled static check; eligible for
//                   SPICE characterization
//   kUnjustifiable  its side inputs cannot be justified to non-controlling
//                   values (SCOAP-infinite, over the SCOAP budget, or
//                   sensitization ATPG failure)
//   kPulseDead      its provable block threshold exceeds the generator
//                   ceiling: no launchable pulse can reach the PO at the
//                   sensing floor even under optimistic in-box parameters
//                   (ppd/sta/survival.hpp), so no SPICE run through it can
//                   ever detect anything
//
// Screened-out paths are counted and reported, never silently dropped —
// the coverage/R_min callers surface the counts so a pruned sweep is
// auditable against the brute-force one.
#pragma once

#include <cstdint>
#include <vector>

#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/paths.hpp"
#include "ppd/logic/sensitize.hpp"

namespace ppd::sta {

enum class Verdict {
  kKept,
  kPulseDead,
  kUnjustifiable,
};

[[nodiscard]] const char* verdict_name(Verdict v);

struct ScreenOptions {
  double clock_period = 0.0;   ///< <= 0: use the netlist's critical delay
  double w_in_max = 1.2e-9;    ///< generator ceiling
  double w_th_floor = 50e-12;  ///< sensing floor
  double margin = 0.25;        ///< survival-bound parameter margin
  bool survival = true;        ///< enable the pulse-death screen
  bool justify = true;         ///< enable the sensitization screen
  /// Reject paths whose SCOAP side-input price exceeds this. 0 = report
  /// the price but reject only statically-infinite ones (the default keeps
  /// the screened sweep's kept set a pure superset property: only provable
  /// rejections).
  std::uint64_t scoap_budget = 0;
  logic::SensitizeOptions sensitize;
  int threads = 1;  ///< exec lanes; verdicts are thread-count invariant
};

struct ScreenedPath {
  logic::Path path;
  Verdict verdict = Verdict::kKept;
  double delay = 0.0;       ///< polarity-tracked worst-case path delay
  double slack = 0.0;       ///< clock_period - delay
  double w_required = 0.0;  ///< provable block threshold at the sensing floor
  std::uint64_t scoap_cost = 0;  ///< SCOAP side-input justification price
};

struct ScreenReport {
  /// One entry per input path, input order preserved.
  std::vector<ScreenedPath> paths;
  std::size_t kept = 0;
  std::size_t pulse_dead = 0;
  std::size_t unjustifiable = 0;
  double clock_period = 0.0;  ///< resolved clock used for slack

  [[nodiscard]] std::vector<logic::Path> kept_paths() const;
};

/// Screen `paths`. Deterministic at any thread count: each path's verdict
/// depends only on the path itself. Checks run cheapest first (survival
/// bound before sensitization ATPG), so a pulse-dead path never pays for
/// justification.
[[nodiscard]] ScreenReport screen_paths(const logic::Netlist& netlist,
                                        const logic::GateTimingLibrary& library,
                                        const std::vector<logic::Path>& paths,
                                        const ScreenOptions& options = {});

}  // namespace ppd::sta
