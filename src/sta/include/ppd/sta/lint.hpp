// PPD3xx — static-timing/testability lint rules, the diagnostic face of
// ppd::sta. Emitted through the same stable-code machinery as the PPD0xx
// netlist, PPD1xx electrical and PPD2xx pulse-config families:
//
//   PPD301  warning  statically pulse-dead gate: even the widest
//                    launchable pulse at this site cannot reach any PO at
//                    the sensing floor (optimistic survival bound)
//   PPD302  warning  unjustifiable side input: a high-slack path's side
//                    inputs cannot be sensitized to non-controlling values
//   PPD303  note     untestable slack site: the net has enough slack to
//                    hide a small delay defect, but is pulse-dead — the
//                    pulse method cannot cover it
//   PPD304  warning  generator ceiling below every path's provable block
//                    threshold: the configured w_in_max makes the entire
//                    netlist statically undetectable
#pragma once

#include "ppd/lint/diagnostic.hpp"
#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/sensitize.hpp"
#include "ppd/sta/survival.hpp"

namespace ppd::sta {

struct StaLintOptions {
  double clock_period = 0.0;  ///< <= 0: use the netlist's critical delay
  SurvivalOptions survival;
  /// A net is a "slack site" for PPD303 when its guaranteed slack is at
  /// least this fraction of the clock period.
  double slack_frac = 0.25;
  /// PPD302 examines at most this many of the slackiest paths.
  std::size_t max_paths = 32;
  logic::SensitizeOptions sensitize;
};

/// Run the PPD3xx family over one netlist.
[[nodiscard]] lint::Report lint_sta(const logic::Netlist& netlist,
                                    const logic::GateTimingLibrary& library,
                                    const StaLintOptions& options = {});

}  // namespace ppd::sta
