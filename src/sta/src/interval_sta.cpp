#include "ppd/sta/interval_sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "ppd/util/error.hpp"

namespace ppd::sta {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

EdgeCause edge_cause(logic::LogicKind kind) {
  using logic::LogicKind;
  switch (kind) {
    case LogicKind::kInput:
    case LogicKind::kBuf:
    case LogicKind::kAnd:
    case LogicKind::kOr: return EdgeCause::kSame;
    case LogicKind::kNot:
    case LogicKind::kNand:
    case LogicKind::kNor: return EdgeCause::kInverted;
    case LogicKind::kXor:
    case LogicKind::kXnor: return EdgeCause::kEither;
  }
  return EdgeCause::kSame;
}

double IntervalStaResult::slack_at(logic::NetId net) const {
  PPD_REQUIRE(net < slack.size(), "net id out of range");
  return slack[net].lo;
}

IntervalStaResult run_interval_sta(const logic::Netlist& netlist,
                                   const logic::GateTimingLibrary& library,
                                   double clock_period) {
  const std::size_t n = netlist.size();
  IntervalStaResult res;
  res.arrival.assign(n, EdgeTimes{});
  res.required_rise.assign(n, kInf);
  res.required_fall.assign(n, kInf);
  res.slack.assign(n, Interval{});

  const auto order = netlist.topological_order();

  // Forward: per-polarity arrival windows. A window's low end is the
  // earliest any causing input edge can switch the output (best case over
  // fanins); the high end is the latest (worst case over fanins).
  for (logic::NetId id : order) {
    const logic::Gate& g = netlist.gate(id);
    if (g.kind == logic::LogicKind::kInput) {
      res.arrival[id] = EdgeTimes{Interval::point(0.0), Interval::point(0.0)};
      continue;
    }
    const logic::GateTiming& t = library.timing(g.kind);
    const EdgeCause cause = edge_cause(g.kind);
    Interval rise_src{kInf, -kInf};
    Interval fall_src{kInf, -kInf};
    for (logic::NetId f : g.fanin) {
      const EdgeTimes& a = res.arrival[f];
      Interval r;  // input window able to cause an output rise
      Interval fl;
      switch (cause) {
        case EdgeCause::kSame: r = a.rise; fl = a.fall; break;
        case EdgeCause::kInverted: r = a.fall; fl = a.rise; break;
        case EdgeCause::kEither: r = hull(a.rise, a.fall); fl = r; break;
      }
      rise_src = {std::min(rise_src.lo, r.lo), std::max(rise_src.hi, r.hi)};
      fall_src = {std::min(fall_src.lo, fl.lo), std::max(fall_src.hi, fl.hi)};
    }
    res.arrival[id].rise = rise_src + t.delay_rise;
    res.arrival[id].fall = fall_src + t.delay_fall;
  }

  for (logic::NetId o : netlist.outputs())
    res.critical_delay = std::max(res.critical_delay, res.arrival[o].latest());
  res.clock_period = clock_period > 0.0 ? clock_period : res.critical_delay;

  // Backward: per-polarity required times. An output rise required at r
  // constrains the causing input polarity at r - delay_rise.
  for (logic::NetId o : netlist.outputs()) {
    res.required_rise[o] = std::min(res.required_rise[o], res.clock_period);
    res.required_fall[o] = std::min(res.required_fall[o], res.clock_period);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const logic::NetId id = *it;
    const logic::Gate& g = netlist.gate(id);
    if (g.kind == logic::LogicKind::kInput) continue;
    const logic::GateTiming& t = library.timing(g.kind);
    const EdgeCause cause = edge_cause(g.kind);
    const double via_rise = res.required_rise[id] - t.delay_rise;
    const double via_fall = res.required_fall[id] - t.delay_fall;
    for (logic::NetId f : g.fanin) {
      switch (cause) {
        case EdgeCause::kSame:
          res.required_rise[f] = std::min(res.required_rise[f], via_rise);
          res.required_fall[f] = std::min(res.required_fall[f], via_fall);
          break;
        case EdgeCause::kInverted:
          res.required_fall[f] = std::min(res.required_fall[f], via_rise);
          res.required_rise[f] = std::min(res.required_rise[f], via_fall);
          break;
        case EdgeCause::kEither: {
          const double via = std::min(via_rise, via_fall);
          res.required_rise[f] = std::min(res.required_rise[f], via);
          res.required_fall[f] = std::min(res.required_fall[f], via);
          break;
        }
      }
    }
  }

  // Slack windows. Nets reaching no output keep +inf required times; clamp
  // them against the clock period like the scalar pass always did.
  for (logic::NetId id = 0; id < n; ++id) {
    const EdgeTimes& a = res.arrival[id];
    const double rr = std::isinf(res.required_rise[id]) ? res.clock_period
                                                        : res.required_rise[id];
    const double rf = std::isinf(res.required_fall[id]) ? res.clock_period
                                                        : res.required_fall[id];
    res.slack[id].lo = std::min(rr - a.rise.hi, rf - a.fall.hi);
    res.slack[id].hi = std::min(rr - a.rise.lo, rf - a.fall.lo);
  }
  return res;
}

namespace {

/// Polarity-pair DP step: accumulated worst delays (rise, fall) of the
/// current edge through one more gate. Unreachable polarity = -inf.
struct PolCost {
  double rise = -kInf;
  double fall = -kInf;

  [[nodiscard]] double worst() const { return std::max(rise, fall); }
};

PolCost step(const PolCost& c, const logic::GateTiming& t, EdgeCause cause) {
  PolCost out;
  switch (cause) {
    case EdgeCause::kSame:
      if (c.rise > -kInf) out.rise = c.rise + t.delay_rise;
      if (c.fall > -kInf) out.fall = c.fall + t.delay_fall;
      break;
    case EdgeCause::kInverted:
      if (c.fall > -kInf) out.rise = c.fall + t.delay_rise;
      if (c.rise > -kInf) out.fall = c.rise + t.delay_fall;
      break;
    case EdgeCause::kEither: {
      const double w = c.worst();
      if (w > -kInf) {
        out.rise = w + t.delay_rise;
        out.fall = w + t.delay_fall;
      }
      break;
    }
  }
  return out;
}

}  // namespace

double path_delay_worst(const logic::Netlist& netlist,
                        const logic::GateTimingLibrary& library,
                        const logic::Path& path) {
  PPD_REQUIRE(!path.nets.empty(), "empty path");
  PolCost c{0.0, 0.0};  // a PI launches either polarity at t = 0
  for (std::size_t i = 1; i < path.nets.size(); ++i) {
    const logic::Gate& g = netlist.gate(path.nets[i]);
    c = step(c, library.timing(g.kind), edge_cause(g.kind));
  }
  return c.worst();
}

std::vector<SlackPath> k_slackiest_paths(const logic::Netlist& netlist,
                                         const logic::GateTimingLibrary& library,
                                         std::size_t k,
                                         const SlackiestOptions& options) {
  std::vector<SlackPath> out;
  if (k == 0 || netlist.outputs().empty()) return out;
  const std::size_t n = netlist.size();

  // Suffix lower bounds h[net][pol]: the least extra worst-case delay any
  // completion to an output can add, entering `net` with that edge
  // polarity. Reverse-topological min over fanouts; admissible because the
  // DP's max-over-polarities can only grow along a real completion.
  std::vector<double> h_rise(n, kInf);
  std::vector<double> h_fall(n, kInf);
  const auto order = netlist.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const logic::NetId id = *it;
    if (netlist.is_output(id)) {
      h_rise[id] = 0.0;
      h_fall[id] = 0.0;
    }
    for (logic::NetId g : netlist.fanout(id)) {
      const logic::GateTiming& t = library.timing(netlist.gate(g).kind);
      switch (edge_cause(netlist.gate(g).kind)) {
        case EdgeCause::kSame:
          h_rise[id] = std::min(h_rise[id], t.delay_rise + h_rise[g]);
          h_fall[id] = std::min(h_fall[id], t.delay_fall + h_fall[g]);
          break;
        case EdgeCause::kInverted:
          h_fall[id] = std::min(h_fall[id], t.delay_rise + h_rise[g]);
          h_rise[id] = std::min(h_rise[id], t.delay_fall + h_fall[g]);
          break;
        case EdgeCause::kEither: {
          const double via = std::min(t.delay_rise + h_rise[g],
                                      t.delay_fall + h_fall[g]);
          h_rise[id] = std::min(h_rise[id], via);
          h_fall[id] = std::min(h_fall[id], via);
          break;
        }
      }
    }
  }

  struct Node {
    double bound = 0.0;  ///< prefix DP + suffix lower bound
    PolCost cost;
    std::vector<logic::NetId> nets;

    bool operator>(const Node& other) const {
      if (bound != other.bound) return bound > other.bound;
      return nets > other.nets;  // deterministic tie-break
    }
  };

  const auto bound_of = [&](const PolCost& c, logic::NetId net) {
    double b = -kInf;
    if (c.rise > -kInf) b = std::max(b, c.rise + h_rise[net]);
    if (c.fall > -kInf) b = std::max(b, c.fall + h_fall[net]);
    return b;
  };

  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> open;
  for (logic::NetId pi : netlist.inputs()) {
    Node seed;
    seed.cost = PolCost{0.0, 0.0};
    seed.nets = {pi};
    seed.bound = bound_of(seed.cost, pi);
    if (std::isfinite(seed.bound)) open.push(std::move(seed));
  }

  const IntervalStaResult sta =
      run_interval_sta(netlist, library, options.clock_period);
  std::size_t expanded = 0;
  while (!open.empty() && out.size() < k && expanded < options.node_budget) {
    Node node = open.top();
    open.pop();
    ++expanded;
    const logic::NetId tip = node.nets.back();
    if (netlist.is_output(tip)) {
      SlackPath sp;
      sp.path.nets = node.nets;
      sp.delay = node.cost.worst();
      sp.slack = sta.clock_period - sp.delay;
      out.push_back(std::move(sp));
      // An output with further fanout may still extend to a deeper output;
      // fall through and keep expanding.
    }
    for (logic::NetId g : netlist.fanout(tip)) {
      const logic::Gate& gate = netlist.gate(g);
      Node next;
      next.cost = step(node.cost, library.timing(gate.kind),
                       edge_cause(gate.kind));
      next.nets = node.nets;
      next.nets.push_back(g);
      next.bound = bound_of(next.cost, g);
      if (std::isfinite(next.bound)) open.push(std::move(next));
    }
  }
  return out;
}

}  // namespace ppd::sta
