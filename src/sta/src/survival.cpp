#include "ppd/sta/survival.hpp"

#include <algorithm>
#include <limits>

#include "ppd/util/error.hpp"

namespace ppd::sta {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Scale the width parameters by `factor`; k = (w_pass - shrink) /
/// (w_pass - w_block) is invariant under uniform scaling, so the scaled
/// map is still continuous at its w_pass.
logic::GateTiming scaled(const logic::GateTiming& t, double factor) {
  logic::GateTiming s = t;
  s.w_block = t.w_block * factor;
  s.w_pass = t.w_pass * factor;
  s.shrink = t.shrink * factor;
  return s;
}

}  // namespace

Interval gate_pulse_bounds(const logic::GateTiming& t, const Interval& w_in,
                           double margin) {
  PPD_REQUIRE(margin >= 0.0 && margin < 1.0, "margin must be in [0, 1)");
  // w_out is nondecreasing in w and nonincreasing in each width parameter,
  // so the box extrema sit at the two uniform corners.
  const double lo = gate_pulse_out(scaled(t, 1.0 + margin),
                                   std::max(0.0, w_in.lo));
  const double hi = gate_pulse_out(scaled(t, 1.0 - margin),
                                   std::max(0.0, w_in.hi));
  return {lo, hi};
}

double gate_required_width(const logic::GateTiming& t, double target,
                           double margin) {
  PPD_REQUIRE(margin >= 0.0 && margin < 1.0, "margin must be in [0, 1)");
  const logic::GateTiming opt = scaled(t, 1.0 - margin);
  if (target <= 0.0) return opt.w_block;  // anything past the block point
  const double asymptote = opt.w_pass - opt.shrink;
  if (target >= asymptote) return target + opt.shrink;
  const double k = (opt.w_pass - opt.shrink) / (opt.w_pass - opt.w_block);
  return target / k + opt.w_block;
}

Interval path_pulse_bounds(const logic::GateTimingLibrary& lib,
                           const logic::Netlist& netlist,
                           const logic::Path& path, const Interval& w_in,
                           double margin) {
  Interval w = w_in;
  for (logic::LogicKind kind : logic::path_kinds(netlist, path)) {
    if (w.hi <= 0.0) return {0.0, 0.0};
    w = gate_pulse_bounds(lib.timing(kind), w, margin);
  }
  return w;
}

double path_required_width(const logic::GateTimingLibrary& lib,
                           const logic::Netlist& netlist,
                           const logic::Path& path, double target,
                           double margin) {
  const auto kinds = logic::path_kinds(netlist, path);
  double need = target;
  for (auto it = kinds.rbegin(); it != kinds.rend(); ++it)
    need = gate_required_width(lib.timing(*it), need, margin);
  return need;
}

bool SurvivalResult::dead(logic::NetId net) const {
  PPD_REQUIRE(net < need.size(), "net id out of range");
  return need[net] > options.w_in_max;
}

SurvivalResult compute_survival(const logic::Netlist& netlist,
                                const logic::GateTimingLibrary& library,
                                const SurvivalOptions& options) {
  PPD_REQUIRE(options.w_in_max > 0.0, "w_in_max must be positive");
  PPD_REQUIRE(options.w_th_floor > 0.0, "w_th_floor must be positive");
  SurvivalResult res;
  res.options = options;
  res.need.assign(netlist.size(), kInf);

  const auto order = netlist.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const logic::NetId id = *it;
    if (netlist.is_output(id))
      res.need[id] = options.w_th_floor;
    for (logic::NetId g : netlist.fanout(id)) {
      const double via = res.need[g];
      if (via == kInf) continue;
      const logic::GateTiming& t = library.timing(netlist.gate(g).kind);
      res.need[id] =
          std::min(res.need[id],
                   gate_required_width(t, via, options.margin));
    }
  }
  return res;
}

}  // namespace ppd::sta
