#include "ppd/sta/lint.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "ppd/sta/interval_sta.hpp"
#include "ppd/util/table.hpp"

namespace ppd::sta {

namespace {

std::string ps(double seconds) {
  return util::format_double(seconds * 1e12, 1) + " ps";
}

std::string path_location(const logic::Netlist& netlist,
                          const logic::Path& path) {
  return netlist.gate(path.input()).name + "->" +
         netlist.gate(path.output()).name;
}

}  // namespace

lint::Report lint_sta(const logic::Netlist& netlist,
                      const logic::GateTimingLibrary& library,
                      const StaLintOptions& options) {
  lint::Report report;
  const IntervalStaResult sta =
      run_interval_sta(netlist, library, options.clock_period);
  const SurvivalResult survival =
      compute_survival(netlist, library, options.survival);

  // PPD301/PPD303: per-site survival vs slack.
  double min_need = std::numeric_limits<double>::infinity();
  for (logic::NetId id = 0; id < netlist.size(); ++id) {
    const logic::Gate& g = netlist.gate(id);
    if (g.kind == logic::LogicKind::kInput) continue;
    min_need = std::min(min_need, survival.need[id]);
    if (!survival.dead(id)) continue;
    const std::string need_s = std::isinf(survival.need[id])
                                   ? "unbounded"
                                   : ps(survival.need[id]);
    report.add(lint::Severity::kWarning, "PPD301", g.name,
               "statically pulse-dead gate: a pulse launched here needs " +
                   need_s + " to reach any output at the " +
                   ps(options.survival.w_th_floor) +
                   " sensing floor, above the " +
                   ps(options.survival.w_in_max) + " generator ceiling",
               "raise w_in_max, lower w_th_floor, or exclude the site from "
               "the pulse-test fault list");
    const double slack = sta.slack[id].lo;
    if (slack >= options.slack_frac * sta.clock_period) {
      report.add(lint::Severity::kNote, "PPD303", g.name,
                 "untestable slack site: " + ps(slack) +
                     " guaranteed slack can hide a small delay defect, but "
                     "the site is statically pulse-dead",
                 "cover the site with a delay test on a shorter path or a "
                 "different method");
    }
  }

  // PPD304: the whole netlist is statically undetectable.
  if (min_need > options.survival.w_in_max) {
    report.add(lint::Severity::kWarning, "PPD304", netlist.source(),
               "generator ceiling " + ps(options.survival.w_in_max) +
                   " is below every site's provable block threshold (best "
                   "site needs " +
                   (std::isinf(min_need) ? "unbounded" : ps(min_need)) +
                   "): no pulse test on this netlist can detect anything",
               "raise w_in_max above the best site's threshold");
  }

  // PPD302: the slackiest paths — precisely the ones the pulse method wants
  // to probe — must be sensitizable.
  SlackiestOptions sopt;
  sopt.clock_period = options.clock_period;
  for (const SlackPath& sp :
       k_slackiest_paths(netlist, library, options.max_paths, sopt)) {
    if (logic::sensitize_path(netlist, sp.path, options.sensitize).ok)
      continue;
    report.add(lint::Severity::kWarning, "PPD302",
               path_location(netlist, sp.path),
               "unjustifiable side input: this " + ps(sp.slack) +
                   "-slack path cannot be sensitized (no PI assignment "
                   "holds every side input non-controlling)",
               "the site may still be covered through another path; check "
               "the screen report");
  }
  return report;
}

}  // namespace ppd::sta
