#include "ppd/sta/scoap.hpp"

#include <algorithm>

#include "ppd/util/error.hpp"

namespace ppd::sta {

std::uint64_t scoap_add(std::uint64_t a, std::uint64_t b) {
  if (a == kScoapInfinite || b == kScoapInfinite) return kScoapInfinite;
  const std::uint64_t s = a + b;
  return s < a ? kScoapInfinite : s;
}

namespace {

using logic::LogicKind;

std::uint64_t sat_min(std::uint64_t a, std::uint64_t b) {
  return std::min(a, b);
}

/// CC of an XOR-class gate over its inputs, folded pairwise:
/// xor(a,b) = 1 costs min(cc0a+cc1b, cc1a+cc0b), = 0 costs
/// min(cc0a+cc0b, cc1a+cc1b); XNOR swaps the two.
void fold_xor(bool xnor, const std::vector<std::uint64_t>& c0,
              const std::vector<std::uint64_t>& c1, std::uint64_t& out0,
              std::uint64_t& out1) {
  std::uint64_t a0 = c0[0];
  std::uint64_t a1 = c1[0];
  for (std::size_t i = 1; i < c0.size(); ++i) {
    const std::uint64_t same =
        sat_min(scoap_add(a0, c0[i]), scoap_add(a1, c1[i]));
    const std::uint64_t diff =
        sat_min(scoap_add(a0, c1[i]), scoap_add(a1, c0[i]));
    a0 = same;
    a1 = diff;
  }
  if (xnor) {
    out0 = a1;
    out1 = a0;
  } else {
    out0 = a0;
    out1 = a1;
  }
}

}  // namespace

ScoapResult compute_scoap(const logic::Netlist& netlist) {
  const std::size_t n = netlist.size();
  ScoapResult res;
  res.cc0.assign(n, kScoapInfinite);
  res.cc1.assign(n, kScoapInfinite);
  res.co.assign(n, kScoapInfinite);

  const auto order = netlist.topological_order();

  for (logic::NetId id : order) {
    const logic::Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) {
      res.cc0[id] = 1;
      res.cc1[id] = 1;
      continue;
    }
    std::vector<std::uint64_t> in0;
    std::vector<std::uint64_t> in1;
    in0.reserve(g.fanin.size());
    in1.reserve(g.fanin.size());
    for (logic::NetId f : g.fanin) {
      in0.push_back(res.cc0[f]);
      in1.push_back(res.cc1[f]);
    }
    std::uint64_t all0 = 1;  // every input at its value, +1 for the gate
    std::uint64_t all1 = 1;
    std::uint64_t min0 = kScoapInfinite;  // cheapest single input
    std::uint64_t min1 = kScoapInfinite;
    for (std::size_t i = 0; i < in0.size(); ++i) {
      all0 = scoap_add(all0, in0[i]);
      all1 = scoap_add(all1, in1[i]);
      min0 = sat_min(min0, scoap_add(in0[i], 1));
      min1 = sat_min(min1, scoap_add(in1[i], 1));
    }
    switch (g.kind) {
      case LogicKind::kBuf:
        res.cc0[id] = scoap_add(in0[0], 1);
        res.cc1[id] = scoap_add(in1[0], 1);
        break;
      case LogicKind::kNot:
        res.cc0[id] = scoap_add(in1[0], 1);
        res.cc1[id] = scoap_add(in0[0], 1);
        break;
      case LogicKind::kAnd:
        res.cc0[id] = min0;
        res.cc1[id] = all1;
        break;
      case LogicKind::kNand:
        res.cc0[id] = all1;
        res.cc1[id] = min0;
        break;
      case LogicKind::kOr:
        res.cc0[id] = all0;
        res.cc1[id] = min1;
        break;
      case LogicKind::kNor:
        res.cc0[id] = min1;
        res.cc1[id] = all0;
        break;
      case LogicKind::kXor:
      case LogicKind::kXnor: {
        std::uint64_t o0 = kScoapInfinite;
        std::uint64_t o1 = kScoapInfinite;
        fold_xor(g.kind == LogicKind::kXnor, in0, in1, o0, o1);
        res.cc0[id] = scoap_add(o0, 1);
        res.cc1[id] = scoap_add(o1, 1);
        break;
      }
      case LogicKind::kInput: break;  // handled above
    }
  }

  // Backward observability: observing input i of gate g requires observing
  // g plus holding the other inputs non-controlling (AND/NAND: 1, OR/NOR:
  // 0; XOR-class: either value, take the cheaper).
  for (logic::NetId o : netlist.outputs()) res.co[o] = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const logic::NetId id = *it;
    const logic::Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    for (logic::NetId f : g.fanin) {
      std::uint64_t cost = scoap_add(res.co[id], 1);
      for (logic::NetId s : g.fanin) {
        if (s == f) continue;
        std::uint64_t side = kScoapInfinite;
        switch (g.kind) {
          case LogicKind::kAnd:
          case LogicKind::kNand: side = res.cc1[s]; break;
          case LogicKind::kOr:
          case LogicKind::kNor: side = res.cc0[s]; break;
          case LogicKind::kXor:
          case LogicKind::kXnor:
            side = sat_min(res.cc0[s], res.cc1[s]);
            break;
          default: side = 0; break;
        }
        cost = scoap_add(cost, side);
      }
      res.co[f] = sat_min(res.co[f], cost);
    }
  }
  return res;
}

std::uint64_t side_input_cost(const logic::Netlist& netlist,
                              const ScoapResult& scoap,
                              const logic::Path& path) {
  PPD_REQUIRE(!path.nets.empty(), "empty path");
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < path.nets.size(); ++i) {
    const logic::Gate& g = netlist.gate(path.nets[i]);
    const auto ctrl = logic::controlling_value(g.kind);
    if (!ctrl.has_value()) continue;  // XOR-class / NOT / BUF: no side cost
    for (logic::NetId s : g.fanin) {
      if (s == path.nets[i - 1]) continue;
      // Non-controlling value: the complement of the controlling one.
      const std::uint64_t c =
          *ctrl ? scoap.cc0[s] : scoap.cc1[s];
      total = scoap_add(total, c);
    }
  }
  return total;
}

}  // namespace ppd::sta
