#include "ppd/sta/screen.hpp"

#include "ppd/exec/parallel.hpp"
#include "ppd/sta/interval_sta.hpp"
#include "ppd/sta/scoap.hpp"
#include "ppd/sta/survival.hpp"
#include "ppd/util/error.hpp"

namespace ppd::sta {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kKept: return "kept";
    case Verdict::kPulseDead: return "pulse-dead";
    case Verdict::kUnjustifiable: return "unjustifiable";
  }
  return "?";
}

std::vector<logic::Path> ScreenReport::kept_paths() const {
  std::vector<logic::Path> out;
  for (const ScreenedPath& p : paths)
    if (p.verdict == Verdict::kKept) out.push_back(p.path);
  return out;
}

ScreenReport screen_paths(const logic::Netlist& netlist,
                          const logic::GateTimingLibrary& library,
                          const std::vector<logic::Path>& paths,
                          const ScreenOptions& options) {
  PPD_REQUIRE(options.w_in_max > 0.0, "w_in_max must be positive");
  PPD_REQUIRE(options.w_th_floor > 0.0, "w_th_floor must be positive");

  ScreenReport report;
  const IntervalStaResult sta =
      run_interval_sta(netlist, library, options.clock_period);
  report.clock_period = sta.clock_period;
  const ScoapResult scoap = compute_scoap(netlist);

  report.paths.assign(paths.size(), ScreenedPath{});
  exec::ParallelOptions popt;
  popt.threads = options.threads;
  popt.context = "sta::screen_paths over " + netlist.source();
  exec::parallel_for(
      paths.size(),
      [&](std::size_t i) {
        ScreenedPath& sp = report.paths[i];
        sp.path = paths[i];
        sp.delay = path_delay_worst(netlist, library, sp.path);
        sp.slack = sta.clock_period - sp.delay;
        sp.w_required = path_required_width(library, netlist, sp.path,
                                            options.w_th_floor, options.margin);
        sp.scoap_cost = side_input_cost(netlist, scoap, sp.path);
        if (options.survival && sp.w_required > options.w_in_max) {
          sp.verdict = Verdict::kPulseDead;
          return;
        }
        if (sp.scoap_cost == kScoapInfinite ||
            (options.scoap_budget > 0 && sp.scoap_cost > options.scoap_budget)) {
          sp.verdict = Verdict::kUnjustifiable;
          return;
        }
        if (options.justify &&
            !logic::sensitize_path(netlist, sp.path, options.sensitize).ok) {
          sp.verdict = Verdict::kUnjustifiable;
          return;
        }
        sp.verdict = Verdict::kKept;
      },
      popt);

  for (const ScreenedPath& p : report.paths) {
    switch (p.verdict) {
      case Verdict::kKept: ++report.kept; break;
      case Verdict::kPulseDead: ++report.pulse_dead; break;
      case Verdict::kUnjustifiable: ++report.unjustifiable; break;
    }
  }
  return report;
}

}  // namespace ppd::sta
