// Figure 2: faulty vs fault-free voltage waveforms when a pulse propagates
// through a path whose second gate has an *internal* resistive open
// (R ~ 8 kOhm in the pull-up network, Fig. 1a). Expected shape: the faulty
// gate's rising output edge is slowed, the pulse shrinks at every level and
// is dampened within a few logic levels.
#include <iostream>

#include "bench_common.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

int run(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  bench::print_banner(std::cout, "Figure 2",
                      "pulse through internal-ROP path (R = 8 kOhm), signals "
                      "A -> B -> C -> D",
                      cli);

  cells::PathOptions po;
  po.kinds.assign(4, cells::GateKind::kInv);

  const double r_fault = 8e3;
  const double w_in = 0.35e-9;
  core::SimSettings sim;
  sim.adaptive = false;  // waveform fidelity over speed
  spice::TransientOptions topt;
  topt.t_stop = 2.5e-9;
  topt.dt = 2e-12;

  // Faulty instance: pull-up break in gate 1 (output B). An h-pulse at the
  // path input arrives at gate 1's input inverted (l), so B's *leading*
  // edge is the slowed rising one — the dampening case of Sect. 2.
  cells::Path faulty = cells::build_path(cells::Process{}, po);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kInternalRopPullUp;
  spec.stage = 1;
  (void)faults::inject_on_path(faulty, spec, r_fault);
  faulty.drive_pulse(/*positive=*/true, w_in, 0.3e-9);
  const auto res_faulty = spice::run_transient(faulty.netlist().circuit(), topt);

  cells::Path clean = cells::build_path(cells::Process{}, po);
  clean.drive_pulse(true, w_in, 0.3e-9);
  const auto res_free = spice::run_transient(clean.netlist().circuit(), topt);

  // Paper labels: A = faulty gate's input net, B = its output, C, D follow.
  const std::vector<std::string> labels{"A", "B", "C", "D"};
  std::vector<const wave::Waveform*> wf, wc;
  for (std::size_t i = 0; i < 4; ++i) {
    wf.push_back(&res_faulty.wave(faulty.stage_outputs()[i]));
    wc.push_back(&res_free.wave(clean.stage_outputs()[i]));
  }
  bench::print_waveforms(std::cout, cells::Process{}.vdd, labels, wf, wc,
                         cli.csv_only);

  const double half = cells::Process{}.vdd / 2;
  const auto w_out_faulty = wave::pulse_width(*wf.back(), half, true);
  const auto w_out_free = wave::pulse_width(*wc.back(), half, true);
  std::cout << "# pulse width at path output, fault-free: "
            << (w_out_free ? ppd::util::format_double(*w_out_free, 4) : "none")
            << " s, faulty: "
            << (w_out_faulty ? ppd::util::format_double(*w_out_faulty, 4)
                             : "dampened")
            << "\n";
  return w_out_free.has_value() && !w_out_faulty.has_value() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
