#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "ppd/util/error.hpp"
#include "ppd/util/table.hpp"

namespace ppd::bench {

core::PathFactory paper_path_factory() {
  core::PathFactory f;
  f.options = cells::seven_gate_path();
  return f;
}

ExperimentCli ExperimentCli::parse(int argc, const char* const* argv) {
  // Peel the obs flags off first: argv is immutable here, so filter into a
  // local vector instead of compacting in place like ppdtool does.
  obs::RunOptions ropt;
  std::vector<const char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (!ropt.command.empty()) ropt.command += ' ';
    ropt.command += argv[i];
    if (!obs::consume_run_flag(argv[i], ropt)) rest.push_back(argv[i]);
  }
  const util::Cli cli(static_cast<int>(rest.size()), rest.data(),
                      {"samples", "seed", "sigma", "csv", "scale", "threads",
                       "strict", "solve-budget", "sweep-budget", "checkpoint",
                       "resume", "fault-plan"});
  ExperimentCli e;
  e.samples = cli.get("samples", e.samples);
  e.seed = static_cast<std::uint64_t>(cli.get("seed", 2007));
  e.sigma = cli.get("sigma", e.sigma);
  e.csv_only = cli.has("csv");
  e.scale = cli.get("scale", e.scale);
  e.threads = cli.get("threads", e.threads);
  PPD_REQUIRE(e.threads >= 0, "--threads must be >= 0 (0 = all cores)");
  e.resil.quarantine = !cli.has("strict");
  e.resil.solve_budget_seconds = cli.get("solve-budget", 0.0);
  e.resil.sweep_budget_seconds = cli.get("sweep-budget", 0.0);
  e.resil.checkpoint_path = cli.get("checkpoint", std::string());
  const std::string resume = cli.get("resume", std::string());
  if (!resume.empty()) {
    e.resil.checkpoint_path = resume;
    e.resil.resume = true;
  }
  const std::string plan = cli.get("fault-plan", std::string());
  e.resil.faults = plan.empty() ? resil::FaultPlan::from_env()
                                : resil::FaultPlan::parse(plan);
  e.run = std::make_shared<obs::ScopedRun>(std::move(ropt));
  e.run->set_meta(e.seed, e.threads);
  return e;
}

void print_banner(std::ostream& os, const std::string& figure,
                  const std::string& description, const ExperimentCli& cli) {
  os << "# === " << figure << " ===\n"
     << "# " << description << "\n"
     << "# Favalli & Metra, \"Pulse propagation for the detection of small "
        "delay defects\", DATE 2007\n"
     << "# meta = " << obs::run_meta_json(cli.seed, cli.threads) << "\n";
}

void print_coverage(std::ostream& os, const std::string& parameter_name,
                    const core::CoverageResult& result, bool csv_only) {
  std::vector<std::string> header{"R_ohm"};
  for (double m : result.multipliers)
    header.push_back(parameter_name + "x" + util::format_double(m, 3));
  util::Table table(std::move(header));
  for (std::size_t r = 0; r < result.resistances.size(); ++r) {
    std::vector<double> row{result.resistances[r]};
    for (std::size_t m = 0; m < result.multipliers.size(); ++m)
      row.push_back(result.coverage[m][r]);
    table.add_numeric_row(row, 4);
  }
  if (csv_only) {
    os << table.to_csv();
    return;
  }
  table.print(os);
  os << "# " << result.simulations << " electrical transients\n";
  if (result.n_quarantined() > 0)
    os << "# n_quarantined = " << result.n_quarantined() << " of "
       << result.quarantine.items << " samples\n";
  // ASCII rendition: one row per resistance, '#' bar for the nominal curve.
  const std::size_t nominal =
      std::min<std::size_t>(result.multipliers.size() - 1, 1);
  os << "# coverage (multiplier " << result.multipliers[nominal] << "):\n";
  for (std::size_t r = 0; r < result.resistances.size(); ++r) {
    const int bar =
        static_cast<int>(std::lround(result.coverage[nominal][r] * 40));
    os << "# " << util::format_double(result.resistances[r], 4) << "\t|"
       << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
}

void print_waveforms(std::ostream& os, double vdd,
                     const std::vector<std::string>& labels,
                     const std::vector<const wave::Waveform*>& faulty,
                     const std::vector<const wave::Waveform*>& fault_free,
                     bool csv_only, double dt_print) {
  PPD_REQUIRE(labels.size() == faulty.size() && labels.size() == fault_free.size(),
              "label/waveform arity mismatch");
  // Merged CSV on a uniform grid.
  double t_end = 0.0;
  for (const auto* w : faulty) t_end = std::max(t_end, w->t_end());
  os << "t_s";
  for (const auto& l : labels) os << ",V(" << l << ")_faulty,V(" << l << ")_free";
  os << "\n";
  for (double t = 0.0; t <= t_end + 1e-15; t += dt_print) {
    os << util::format_double(t, 6);
    for (std::size_t i = 0; i < labels.size(); ++i)
      os << ',' << util::format_double(faulty[i]->at(t), 5) << ','
         << util::format_double(fault_free[i]->at(t), 5);
    os << "\n";
  }
  if (csv_only) return;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    os << "# V(" << labels[i] << ") faulty:\n"
       << wave::ascii_plot(*faulty[i], 0.0, vdd, 72, 6)
       << "# V(" << labels[i] << ") fault-free:\n"
       << wave::ascii_plot(*fault_free[i], 0.0, vdd, 72, 6);
  }
}

}  // namespace ppd::bench
