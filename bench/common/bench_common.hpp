// Shared fixtures for the figure-reproduction benches: the paper's
// experimental setup (7-gate sensitized path, fault at the output of the
// second gate), waveform printing, and coverage-table formatting.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ppd/core/coverage.hpp"
#include "ppd/core/measure.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/resil/sweep_guard.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/table.hpp"

namespace ppd::bench {

/// The paper's Sect. 4 workload: a 7-gate mixed path; faults go at the
/// output of gate 2 (stage index 1).
[[nodiscard]] core::PathFactory paper_path_factory();
constexpr std::size_t kPaperFaultStage = 1;

/// Standard experiment knobs every figure bench accepts.
struct ExperimentCli {
  int samples = 40;           ///< --samples
  std::uint64_t seed = 2007;  ///< --seed
  double sigma = 0.05;        ///< --sigma
  bool csv_only = false;      ///< --csv
  double scale = 1.0;         ///< --scale: multiply default workload sizes
  /// --threads: parallel lanes for the MC populations and fault lists
  /// (0 = all hardware cores, 1 = serial). Outputs are bit-identical at any
  /// setting — the knob only changes wall-clock.
  int threads = 0;

  /// Resilience policy for the bench's Monte-Carlo sweeps. Benches run in
  /// quarantine mode by default (an overnight figure should report broken
  /// samples, not die on one); --strict restores fail-fast. Also wired:
  /// --solve-budget=s, --sweep-budget=s, --checkpoint=FILE, --resume=FILE
  /// and --fault-plan=SPEC (PPD_FAULT_PLAN env fallback).
  resil::SweepPolicy resil;

  /// Observability sinks for this bench run (--metrics=, --trace=,
  /// --log-level=, --log-json=); writes the requested files when the last
  /// copy of the parsed CLI goes out of scope at process exit.
  std::shared_ptr<obs::ScopedRun> run;

  static ExperimentCli parse(int argc, const char* const* argv);
};

/// Print a figure header (paper reference + what the series mean) plus the
/// standard run meta line (seed, threads, build flags, ISO-8601 timestamp)
/// as a single machine-readable JSON comment.
void print_banner(std::ostream& os, const std::string& figure,
                  const std::string& description, const ExperimentCli& cli);

/// Print a coverage result as the rows the figure plots, one line per
/// resistance with one column per multiplier, plus an ASCII rendition.
void print_coverage(std::ostream& os, const std::string& parameter_name,
                    const core::CoverageResult& result, bool csv_only);

/// Waveform set printer (Fig. 2/3/5 style): faulty vs fault-free voltages
/// of the labelled nodes, as CSV (down-sampled) and stacked ASCII strips.
void print_waveforms(std::ostream& os, double vdd,
                     const std::vector<std::string>& labels,
                     const std::vector<const wave::Waveform*>& faulty,
                     const std::vector<const wave::Waveform*>& fault_free,
                     bool csv_only, double dt_print = 40e-12);

}  // namespace ppd::bench
