// Figure 3: faulty vs fault-free waveforms for an *external* ROP on a
// fan-out branch (Fig. 1b): R between gate output B and the on-path branch
// B.C. Both edges of B.C are slowed; with an input pulse comparable to the
// degraded transition time the pulse at B.C never completes and dies
// downstream, while B itself stays sharp.
#include <iostream>

#include "bench_common.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

int run(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  bench::print_banner(std::cout, "Figure 3",
                      "pulse through external branch-ROP path (R = 64 kOhm), "
                      "signals A -> B -> B.C -> C -> D",
                      cli);

  cells::PathOptions po;
  po.kinds.assign(4, cells::GateKind::kInv);

  // Our 180nm-class cells have ~5 fF gate input capacitance, so the branch
  // ROP needs a larger R than the paper's process for the same RC; the
  // qualitative ordering (external branch = mildest fault) is preserved.
  const double r_fault = 64e3;
  const double w_in = 0.35e-9;
  spice::TransientOptions topt;
  topt.t_stop = 2.5e-9;
  topt.dt = 2e-12;

  cells::Path faulty = cells::build_path(cells::Process{}, po);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopBranch;
  spec.stage = 1;  // between B (= gate 1 output) and gate 2's input
  const faults::InjectedFault fault = faults::inject_on_path(faulty, spec, r_fault);
  faulty.drive_pulse(true, w_in, 0.3e-9);
  const auto res_faulty = spice::run_transient(faulty.netlist().circuit(), topt);

  cells::Path clean = cells::build_path(cells::Process{}, po);
  clean.drive_pulse(true, w_in, 0.3e-9);
  const auto res_free = spice::run_transient(clean.netlist().circuit(), topt);

  const std::vector<std::string> labels{"A", "B", "B.C", "C", "D"};
  std::vector<const wave::Waveform*> wf{
      &res_faulty.wave(faulty.stage_outputs()[0]),
      &res_faulty.wave(faulty.stage_outputs()[1]),
      &res_faulty.wave(fault.spliced_node),
      &res_faulty.wave(faulty.stage_outputs()[2]),
      &res_faulty.wave(faulty.stage_outputs()[3])};
  // The fault-free circuit has no B.C node; B stands in for it.
  std::vector<const wave::Waveform*> wc{
      &res_free.wave(clean.stage_outputs()[0]),
      &res_free.wave(clean.stage_outputs()[1]),
      &res_free.wave(clean.stage_outputs()[1]),
      &res_free.wave(clean.stage_outputs()[2]),
      &res_free.wave(clean.stage_outputs()[3])};
  bench::print_waveforms(std::cout, cells::Process{}.vdd, labels, wf, wc,
                         cli.csv_only);

  const double half = cells::Process{}.vdd / 2;
  const auto slew_bc =
      wave::slew_time(*wf[2], wave::Edge::kRise, 0.0, cells::Process{}.vdd);
  const auto slew_b =
      wave::slew_time(*wf[1], wave::Edge::kRise, 0.0, cells::Process{}.vdd);
  const auto w_out_faulty = wave::pulse_width(*wf.back(), half, true);
  const auto w_out_free = wave::pulse_width(*wc.back(), half, true);
  std::cout << "# B.C rise slew / B rise slew: "
            << (slew_b && slew_bc ? util::format_double(*slew_bc / *slew_b, 3)
                                  : std::string("n/a"))
            << "\n# pulse width at path output, fault-free: "
            << (w_out_free ? util::format_double(*w_out_free, 4) : "none")
            << " s, faulty: "
            << (w_out_faulty ? util::format_double(*w_out_faulty, 4)
                             : "dampened")
            << "\n";
  return w_out_free.has_value() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
