// Service load bench: N concurrent ppdctl-style clients against one
// in-process ppdd server, mixed query types, cold cache then warm cache.
//
// Emits perf_engine-style JSON rows:
//   {"section":"meta",...}
//   {"section":"service_load","pass":"cold"|"warm"|"warm_noobs",
//    "clients":N,...,"p50_ms":...,"p99_ms":...,"throughput_qps":...,
//    "identical":true}
//   {"section":"service_load","pass":"overload","offered":N,"accepted":N,
//    "busy":N,"expired":N,"shed_rate":...,"p99_ms":...,"typed":true,
//    "alive":true,"identical":true}
//   {"section":"service_obs_overhead","p50_on_ms":...,"p50_off_ms":...,
//    "overhead_pct":...}
//   {"section":"service_load_summary","warm_p50_speedup":...,
//    "metrics_events":N,...}
//
// Every served response is compared byte-for-byte against the result of
// calling net::run_query directly with the same parameters — the
// bit-identity contract under concurrent multi-client load, not just in the
// single-shot case. Every result event must also carry a non-zero query id
// and a positive execute time (the observability contract). A subscriber
// client rides along during the warm pass and validates the SUBSCRIBE
// metrics stream. The warm_noobs pass replays the warm workload with
// metrics recording disabled, measuring the observability overhead on the
// served path.
//
// The overload pass (PR 9) offers 2x the configured capacity against a
// dedicated server with a tiny in-flight ceiling: every refused query must
// carry a typed BUSY reply (never a silent drop), a deadline-carrying query
// behind the simulated queue delay must come back "expired", accepted
// queries must stay byte-identical, and the server must answer normally
// afterwards. It reports the shed rate and the p99 of *accepted* queries —
// the latency promise load shedding exists to protect.
//
// The bench exits non-zero if any contract breaks.
//
//   --clients=N   concurrent client connections (default 6, min 4)
//   --rounds=N    repetitions of the query mix per client (default 2)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/net/query.hpp"
#include "ppd/net/server.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/util/cli.hpp"

namespace {

using namespace ppd;
using Clock = std::chrono::steady_clock;

constexpr const char* kBenchUpload = "load.bench";
constexpr const char* kBenchText =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

struct QuerySpec {
  const char* kind;
  std::string arg;  // lint upload name
  std::vector<std::pair<std::string, std::string>> params;
};

// Small instances of every query kind: the bench measures service overhead
// and cache amortization, not the electrical solver itself.
std::vector<QuerySpec> query_mix() {
  return {
      {"transfer", "", {{"points", "7"}}},
      {"calibrate", "", {{"samples", "6"}}},
      {"coverage", "", {{"samples", "4"}, {"points", "3"}}},
      {"rmin", "", {{"samples", "3"}, {"steps", "4"}}},
      {"lint", kBenchUpload, {}},
  };
}

/// What ppdtool would print for this spec — the byte-identity reference.
std::string expected_body(const QuerySpec& spec) {
  const net::QueryKind kind = net::query_kind_from_string(spec.kind);
  net::QueryParams params = net::params_from_lookup(
      kind, [&spec](const std::string& key) -> std::optional<std::string> {
        for (const auto& [k, v] : spec.params)
          if (k == key) return v;
        return std::nullopt;
      });
  if (kind == net::QueryKind::kLint) {
    params.lint_name = kBenchUpload;
    params.lint_text = kBenchText;
  }
  return net::run_query(kind, params).body;
}

struct ClientStats {
  std::vector<double> latencies_s;
  int mismatches = 0;
};

ClientStats run_client(std::uint16_t port, int rounds,
                       const std::vector<QuerySpec>& mix,
                       const std::vector<std::string>& expected) {
  ClientStats stats;
  net::Client client = net::Client::connect(port);
  client.upload(kBenchUpload, kBenchText);
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t q = 0; q < mix.size(); ++q) {
      for (const auto& [key, value] : mix[q].params)
        client.set(key, value);
      const auto start = Clock::now();
      const net::Client::Result res = client.run(mix[q].kind, mix[q].arg);
      stats.latencies_s.push_back(
          std::chrono::duration<double>(Clock::now() - start).count());
      // Body byte-identity plus the observability contract: every result
      // carries its server-wide query id and a positive execute time.
      if (res.status != "ok" || res.body != expected[q] || res.qid == 0 ||
          res.execute_s <= 0.0)
        ++stats.mismatches;
    }
  }
  client.quit();
  return stats;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(v.size()) - 1.0,
                       std::ceil(p * static_cast<double>(v.size())) - 1.0));
  return v[idx];
}

struct PassResult {
  double p50_ms = 0.0, p99_ms = 0.0, qps = 0.0;
  bool identical = false;
};

PassResult run_pass(const char* pass, std::uint16_t port, int clients,
                    int rounds, const std::vector<QuerySpec>& mix,
                    const std::vector<std::string>& expected) {
  std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
  const auto start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        stats[static_cast<std::size_t>(c)] =
            run_client(port, rounds, mix, expected);
      });
    for (auto& t : threads) t.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  int mismatches = 0;
  for (const auto& s : stats) {
    all.insert(all.end(), s.latencies_s.begin(), s.latencies_s.end());
    mismatches += s.mismatches;
  }
  PassResult res;
  res.p50_ms = percentile(all, 0.50) * 1e3;
  res.p99_ms = percentile(all, 0.99) * 1e3;
  res.qps = static_cast<double>(all.size()) / wall;
  res.identical = mismatches == 0;
  std::printf(
      "{\"section\":\"service_load\",\"pass\":\"%s\",\"clients\":%d,"
      "\"rounds\":%d,\"queries\":%zu,\"wall_s\":%.4f,"
      "\"throughput_qps\":%.2f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"identical\":%s}\n",
      pass, clients, rounds, all.size(), wall, res.qps, res.p50_ms,
      res.p99_ms, res.identical ? "true" : "false");
  return res;
}

struct OverloadResult {
  int offered = 0;    ///< every QUERY submitted
  int accepted = 0;   ///< got a slot (result event followed)
  int busy = 0;       ///< typed BUSY (shed / ceiling / backlog)
  int ok = 0;
  int expired = 0;    ///< typed result status "expired"
  int errors = 0;     ///< body mismatch / error status / untyped outcome
  double p99_ms = 0.0;  ///< over accepted queries only
  bool alive = false;   ///< server answered normally after the storm
};

/// Offered load at 2x the server's in-flight capacity: `clients` concurrent
/// connections against a ceiling of clients/2. Every submit must resolve to
/// a typed outcome — accepted (result event), or a reply starting "BUSY".
OverloadResult run_overload_pass(int clients, int rounds,
                                 const std::vector<QuerySpec>& mix,
                                 const std::vector<std::string>& expected) {
  net::ServerOptions options;
  options.port = 0;
  options.max_inflight_total = static_cast<std::size_t>(std::max(1, clients / 2));
  // Hold each accepted query at pickup for a beat: capacity stays genuinely
  // saturated for the whole storm instead of depending on solver timing.
  options.debug_pickup_delay_seconds = 0.005;
  net::Server server(options);
  server.start();

  std::vector<OverloadResult> per_client(static_cast<std::size_t>(clients));
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        OverloadResult& out = per_client[static_cast<std::size_t>(c)];
        std::vector<double>& lat = latencies[static_cast<std::size_t>(c)];
        net::Client client = net::Client::connect(server.port());
        client.upload(kBenchUpload, kBenchText);
        net::Client::SubmitOptions opts;
        opts.deadline_ms = 2000;  // generous: queue delay alone never expires
        for (int round = 0; round < rounds; ++round) {
          for (std::size_t q = 0; q < mix.size(); ++q) {
            for (const auto& [key, value] : mix[q].params)
              client.set(key, value);
            ++out.offered;
            const auto start = Clock::now();
            const net::Client::Submitted sub =
                client.submit(mix[q].kind, mix[q].arg, opts);
            if (sub.busy) {
              // Refusals must be typed, never a silent drop.
              if (sub.reply.rfind("BUSY", 0) == 0)
                ++out.busy;
              else
                ++out.errors;
              continue;
            }
            ++out.accepted;
            const net::Client::Result res = client.wait(sub.id);
            lat.push_back(
                std::chrono::duration<double>(Clock::now() - start).count());
            if (res.status == "ok" && res.body == expected[q])
              ++out.ok;
            else if (res.status == "expired")
              ++out.expired;
            else
              ++out.errors;
          }
        }
        client.quit();
      });
    for (auto& t : threads) t.join();
  }

  OverloadResult total;
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    const OverloadResult& out = per_client[static_cast<std::size_t>(c)];
    total.offered += out.offered;
    total.accepted += out.accepted;
    total.busy += out.busy;
    total.ok += out.ok;
    total.expired += out.expired;
    total.errors += out.errors;
    all.insert(all.end(), latencies[static_cast<std::size_t>(c)].begin(),
               latencies[static_cast<std::size_t>(c)].end());
  }
  total.p99_ms = percentile(all, 0.99) * 1e3;

  // Deterministic deadline expiry: alone on the server, a 1 ms deadline
  // behind the 5 ms pickup delay must be admitted, never executed, and
  // reported with the typed "expired" status.
  try {
    net::Client late = net::Client::connect(server.port());
    late.set("points", "7");
    net::Client::SubmitOptions opts;
    opts.deadline_ms = 1;
    const net::Client::Submitted sub = late.submit("transfer", "", opts);
    if (!sub.busy) {
      ++total.offered;
      ++total.accepted;
      const net::Client::Result res = late.wait(sub.id);
      if (res.status == "expired" && res.body.empty())
        ++total.expired;
      else
        ++total.errors;
    }
    // The server must still answer normally after the storm.
    total.alive = net::is_ok(late.ping()) &&
                  net::parse_json(late.stats())
                          .at("server")
                          .at("draining")
                          .as_bool() == false;
    late.quit();
  } catch (const std::exception&) {
    total.alive = false;
  }
  server.drain();
  return total;
}

struct SubscriberResult {
  int events = 0;
  bool ok = false;
};

/// Ride-along metrics subscriber: SUBSCRIBE at a fast period, validate
/// `want` consecutive frames (parseable, seq increments, stats present).
SubscriberResult run_subscriber(std::uint16_t port, int want) {
  SubscriberResult out;
  try {
    net::Client client = net::Client::connect(port);
    client.subscribe(0.05);
    std::uint64_t last_seq = 0;
    while (out.events < want) {
      const auto line = client.next_event();
      if (!line) return out;
      if (line->rfind("{\"event\":\"metrics\"", 0) != 0) continue;
      const net::JsonValue ev = net::parse_json(*line);
      const std::uint64_t seq = ev.at("seq").as_uint();
      if (seq != last_seq + 1) return out;
      last_seq = seq;
      (void)ev.at("stats").at("server").at("queries_accepted").as_uint();
      (void)ev.at("interval").at("transfer").at("ok").as_uint();
      ++out.events;
    }
    out.ok = true;
    client.quit();
  } catch (const std::exception&) {
    // Validation failure or a dropped stream: reported via ok=false.
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ScopedRun run(obs::extract_run_options(argc, argv));
  const util::Cli cli(argc, argv, {"clients", "rounds"});
  const int clients = std::max(4, cli.get("clients", 6));
  const int rounds = std::max(1, cli.get("rounds", 2));

  const auto mix = query_mix();

  std::printf("{\"section\":\"meta\",\"meta\":%s}\n",
              obs::run_meta_json(2007, 0).c_str());

  // Reference bodies computed directly (no socket), against a cold cache so
  // the reference itself is what single-shot ppdtool prints.
  cache::SolveCache::global().clear();
  std::vector<std::string> expected;
  expected.reserve(mix.size());
  for (const auto& spec : mix) expected.push_back(expected_body(spec));

  net::ServerOptions options;
  options.port = 0;
  net::Server server(options);
  server.start();

  // Cold pass: empty cache, every client pays its own solves (minus what
  // concurrent clients share). Warm pass: identical workload replayed
  // against the populated cache.
  cache::SolveCache::global().clear();
  const PassResult cold =
      run_pass("cold", server.port(), clients, rounds, mix, expected);

  // A subscriber validates the SUBSCRIBE metrics stream while the warm
  // pass generates load (the stream keeps flowing after the pass, so the
  // join cannot deadlock).
  SubscriberResult sub;
  std::thread subscriber(
      [&sub, &server] { sub = run_subscriber(server.port(), 2); });
  const PassResult warm =
      run_pass("warm", server.port(), clients, rounds, mix, expected);
  subscriber.join();

  // Observability overhead on the served path: replay the warm workload
  // with metrics recording disabled and compare p50.
  obs::set_metrics_enabled(false);
  const PassResult noobs =
      run_pass("warm_noobs", server.port(), clients, rounds, mix, expected);
  obs::set_metrics_enabled(true);
  const double overhead_pct =
      noobs.p50_ms > 0.0 ? (warm.p50_ms - noobs.p50_ms) / noobs.p50_ms * 100.0
                         : 0.0;
  std::printf(
      "{\"section\":\"service_obs_overhead\",\"p50_on_ms\":%.3f,"
      "\"p50_off_ms\":%.3f,\"overhead_pct\":%.2f}\n",
      warm.p50_ms, noobs.p50_ms, overhead_pct);

  // Overload: 2x capacity against a dedicated small-ceiling server. The
  // accounting must be airtight — every offered query resolves to accepted
  // or typed BUSY, every accepted one to ok/expired, and the server stays
  // healthy.
  const OverloadResult over =
      run_overload_pass(clients, rounds, mix, expected);
  const bool over_typed =
      over.errors == 0 && over.offered == over.accepted + over.busy &&
      over.accepted == over.ok + over.expired;
  const double shed_rate =
      over.offered > 0
          ? static_cast<double>(over.busy) / static_cast<double>(over.offered)
          : 0.0;
  std::printf(
      "{\"section\":\"service_load\",\"pass\":\"overload\",\"clients\":%d,"
      "\"rounds\":%d,\"offered\":%d,\"accepted\":%d,\"busy\":%d,\"ok\":%d,"
      "\"expired\":%d,\"errors\":%d,\"shed_rate\":%.3f,\"p99_ms\":%.3f,"
      "\"typed\":%s,\"alive\":%s,\"identical\":%s}\n",
      clients, rounds, over.offered, over.accepted, over.busy, over.ok,
      over.expired, over.errors, shed_rate, over.p99_ms,
      over_typed ? "true" : "false", over.alive ? "true" : "false",
      over.errors == 0 ? "true" : "false");

  std::printf(
      "{\"section\":\"service_load_summary\",\"warm_p50_speedup\":%.3f,"
      "\"warm_p99_speedup\":%.3f,\"metrics_events\":%d,\"identical\":%s}\n",
      warm.p50_ms > 0.0 ? cold.p50_ms / warm.p50_ms : 0.0,
      warm.p99_ms > 0.0 ? cold.p99_ms / warm.p99_ms : 0.0, sub.events,
      cold.identical && warm.identical && noobs.identical ? "true" : "false");

  server.drain();
  return cold.identical && warm.identical && noobs.identical && sub.ok &&
                 over_typed && over.alive
             ? 0
             : 1;
}
