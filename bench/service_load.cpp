// Service load bench: N concurrent ppdctl-style clients against one
// in-process ppdd server, mixed query types, cold cache then warm cache.
//
// Emits perf_engine-style JSON rows:
//   {"section":"meta",...}
//   {"section":"service_load","pass":"cold"|"warm"|"warm_noobs",
//    "clients":N,...,"p50_ms":...,"p99_ms":...,"throughput_qps":...,
//    "identical":true}
//   {"section":"service_obs_overhead","p50_on_ms":...,"p50_off_ms":...,
//    "overhead_pct":...}
//   {"section":"service_load_summary","warm_p50_speedup":...,
//    "metrics_events":N,...}
//
// Every served response is compared byte-for-byte against the result of
// calling net::run_query directly with the same parameters — the
// bit-identity contract under concurrent multi-client load, not just in the
// single-shot case. Every result event must also carry a non-zero query id
// and a positive execute time (the observability contract). A subscriber
// client rides along during the warm pass and validates the SUBSCRIBE
// metrics stream. The warm_noobs pass replays the warm workload with
// metrics recording disabled, measuring the observability overhead on the
// served path. The bench exits non-zero if any contract breaks.
//
//   --clients=N   concurrent client connections (default 6, min 4)
//   --rounds=N    repetitions of the query mix per client (default 2)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/net/query.hpp"
#include "ppd/net/server.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/util/cli.hpp"

namespace {

using namespace ppd;
using Clock = std::chrono::steady_clock;

constexpr const char* kBenchUpload = "load.bench";
constexpr const char* kBenchText =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

struct QuerySpec {
  const char* kind;
  std::string arg;  // lint upload name
  std::vector<std::pair<std::string, std::string>> params;
};

// Small instances of every query kind: the bench measures service overhead
// and cache amortization, not the electrical solver itself.
std::vector<QuerySpec> query_mix() {
  return {
      {"transfer", "", {{"points", "7"}}},
      {"calibrate", "", {{"samples", "6"}}},
      {"coverage", "", {{"samples", "4"}, {"points", "3"}}},
      {"rmin", "", {{"samples", "3"}, {"steps", "4"}}},
      {"lint", kBenchUpload, {}},
  };
}

/// What ppdtool would print for this spec — the byte-identity reference.
std::string expected_body(const QuerySpec& spec) {
  const net::QueryKind kind = net::query_kind_from_string(spec.kind);
  net::QueryParams params = net::params_from_lookup(
      kind, [&spec](const std::string& key) -> std::optional<std::string> {
        for (const auto& [k, v] : spec.params)
          if (k == key) return v;
        return std::nullopt;
      });
  if (kind == net::QueryKind::kLint) {
    params.lint_name = kBenchUpload;
    params.lint_text = kBenchText;
  }
  return net::run_query(kind, params).body;
}

struct ClientStats {
  std::vector<double> latencies_s;
  int mismatches = 0;
};

ClientStats run_client(std::uint16_t port, int rounds,
                       const std::vector<QuerySpec>& mix,
                       const std::vector<std::string>& expected) {
  ClientStats stats;
  net::Client client = net::Client::connect(port);
  client.upload(kBenchUpload, kBenchText);
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t q = 0; q < mix.size(); ++q) {
      for (const auto& [key, value] : mix[q].params)
        client.set(key, value);
      const auto start = Clock::now();
      const net::Client::Result res = client.run(mix[q].kind, mix[q].arg);
      stats.latencies_s.push_back(
          std::chrono::duration<double>(Clock::now() - start).count());
      // Body byte-identity plus the observability contract: every result
      // carries its server-wide query id and a positive execute time.
      if (res.status != "ok" || res.body != expected[q] || res.qid == 0 ||
          res.execute_s <= 0.0)
        ++stats.mismatches;
    }
  }
  client.quit();
  return stats;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(v.size()) - 1.0,
                       std::ceil(p * static_cast<double>(v.size())) - 1.0));
  return v[idx];
}

struct PassResult {
  double p50_ms = 0.0, p99_ms = 0.0, qps = 0.0;
  bool identical = false;
};

PassResult run_pass(const char* pass, std::uint16_t port, int clients,
                    int rounds, const std::vector<QuerySpec>& mix,
                    const std::vector<std::string>& expected) {
  std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
  const auto start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        stats[static_cast<std::size_t>(c)] =
            run_client(port, rounds, mix, expected);
      });
    for (auto& t : threads) t.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  int mismatches = 0;
  for (const auto& s : stats) {
    all.insert(all.end(), s.latencies_s.begin(), s.latencies_s.end());
    mismatches += s.mismatches;
  }
  PassResult res;
  res.p50_ms = percentile(all, 0.50) * 1e3;
  res.p99_ms = percentile(all, 0.99) * 1e3;
  res.qps = static_cast<double>(all.size()) / wall;
  res.identical = mismatches == 0;
  std::printf(
      "{\"section\":\"service_load\",\"pass\":\"%s\",\"clients\":%d,"
      "\"rounds\":%d,\"queries\":%zu,\"wall_s\":%.4f,"
      "\"throughput_qps\":%.2f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"identical\":%s}\n",
      pass, clients, rounds, all.size(), wall, res.qps, res.p50_ms,
      res.p99_ms, res.identical ? "true" : "false");
  return res;
}

struct SubscriberResult {
  int events = 0;
  bool ok = false;
};

/// Ride-along metrics subscriber: SUBSCRIBE at a fast period, validate
/// `want` consecutive frames (parseable, seq increments, stats present).
SubscriberResult run_subscriber(std::uint16_t port, int want) {
  SubscriberResult out;
  try {
    net::Client client = net::Client::connect(port);
    client.subscribe(0.05);
    std::uint64_t last_seq = 0;
    while (out.events < want) {
      const auto line = client.next_event();
      if (!line) return out;
      if (line->rfind("{\"event\":\"metrics\"", 0) != 0) continue;
      const net::JsonValue ev = net::parse_json(*line);
      const std::uint64_t seq = ev.at("seq").as_uint();
      if (seq != last_seq + 1) return out;
      last_seq = seq;
      (void)ev.at("stats").at("server").at("queries_accepted").as_uint();
      (void)ev.at("interval").at("transfer").at("ok").as_uint();
      ++out.events;
    }
    out.ok = true;
    client.quit();
  } catch (const std::exception&) {
    // Validation failure or a dropped stream: reported via ok=false.
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ScopedRun run(obs::extract_run_options(argc, argv));
  const util::Cli cli(argc, argv, {"clients", "rounds"});
  const int clients = std::max(4, cli.get("clients", 6));
  const int rounds = std::max(1, cli.get("rounds", 2));

  const auto mix = query_mix();

  std::printf("{\"section\":\"meta\",\"meta\":%s}\n",
              obs::run_meta_json(2007, 0).c_str());

  // Reference bodies computed directly (no socket), against a cold cache so
  // the reference itself is what single-shot ppdtool prints.
  cache::SolveCache::global().clear();
  std::vector<std::string> expected;
  expected.reserve(mix.size());
  for (const auto& spec : mix) expected.push_back(expected_body(spec));

  net::ServerOptions options;
  options.port = 0;
  net::Server server(options);
  server.start();

  // Cold pass: empty cache, every client pays its own solves (minus what
  // concurrent clients share). Warm pass: identical workload replayed
  // against the populated cache.
  cache::SolveCache::global().clear();
  const PassResult cold =
      run_pass("cold", server.port(), clients, rounds, mix, expected);

  // A subscriber validates the SUBSCRIBE metrics stream while the warm
  // pass generates load (the stream keeps flowing after the pass, so the
  // join cannot deadlock).
  SubscriberResult sub;
  std::thread subscriber(
      [&sub, &server] { sub = run_subscriber(server.port(), 2); });
  const PassResult warm =
      run_pass("warm", server.port(), clients, rounds, mix, expected);
  subscriber.join();

  // Observability overhead on the served path: replay the warm workload
  // with metrics recording disabled and compare p50.
  obs::set_metrics_enabled(false);
  const PassResult noobs =
      run_pass("warm_noobs", server.port(), clients, rounds, mix, expected);
  obs::set_metrics_enabled(true);
  const double overhead_pct =
      noobs.p50_ms > 0.0 ? (warm.p50_ms - noobs.p50_ms) / noobs.p50_ms * 100.0
                         : 0.0;
  std::printf(
      "{\"section\":\"service_obs_overhead\",\"p50_on_ms\":%.3f,"
      "\"p50_off_ms\":%.3f,\"overhead_pct\":%.2f}\n",
      warm.p50_ms, noobs.p50_ms, overhead_pct);

  std::printf(
      "{\"section\":\"service_load_summary\",\"warm_p50_speedup\":%.3f,"
      "\"warm_p99_speedup\":%.3f,\"metrics_events\":%d,\"identical\":%s}\n",
      warm.p50_ms > 0.0 ? cold.p50_ms / warm.p50_ms : 0.0,
      warm.p99_ms > 0.0 ? cold.p99_ms / warm.p99_ms : 0.0, sub.events,
      cold.identical && warm.identical && noobs.identical ? "true" : "false");

  server.drain();
  return cold.identical && warm.identical && noobs.identical && sub.ok ? 0
                                                                       : 1;
}
