// Figure 10: the pulse transfer function w_out = f_p(w_in) of a 7-gate path
// under nominal conditions (full curve) plus Monte-Carlo scatter at a few
// injected widths. Expected shape: three regions — complete dampening, a
// steep attenuation region that is very sensitive to parameter fluctuations
// (and must therefore be avoided when picking w_in), and an asymptotic
// linear region of slope ~1.
#include <iostream>

#include "bench_common.hpp"
#include "ppd/exec/parallel.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

int run(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  bench::print_banner(std::cout, "Figure 10",
                      "w_out vs w_in: nominal curve + MC scatter at w_in in "
                      "{0.16, 0.20, 0.25, 0.35, 0.50} ns",
                      cli);

  const core::PathFactory factory = bench::paper_path_factory();
  const core::SimSettings sim;

  // Nominal curve.
  const auto grid = core::linspace(0.08e-9, 0.8e-9, 19);
  core::PathInstance nominal = core::make_instance(factory, 0.0, nullptr);
  const auto curve =
      core::transfer_function(nominal.path, core::PulseKind::kH, grid, sim);
  util::Table t({"w_in_s", "w_out_s_nominal"});
  for (std::size_t i = 0; i < grid.size(); ++i)
    t.add_numeric_row({curve.w_in[i], curve.w_out[i]}, 5);
  if (cli.csv_only)
    std::cout << t.to_csv();
  else
    t.print(std::cout);

  // Monte-Carlo scatter at marked widths spanning the attenuation region
  // and the asymptote. (The paper marks 0.30..0.50 ns; region boundaries
  // are process-specific, so we keep the same *relative* placement — two
  // points inside the attenuation region, one at its edge, two beyond.)
  const int samples = std::max(4, static_cast<int>(cli.samples * cli.scale / 4));
  const auto model = mc::VariationModel::uniform_sigma(cli.sigma);
  util::Table s({"w_in_s", "sample", "w_out_s"});
  std::vector<double> widths{0.16e-9, 0.20e-9, 0.25e-9, 0.35e-9, 0.50e-9};
  // Flat (width, sample) population, one transient per item; each sample
  // reuses its (seed, k) stream so --threads never changes the numbers.
  exec::ParallelOptions par;
  par.threads = cli.threads;
  const auto n_samples = static_cast<std::size_t>(samples);
  const auto scatter = exec::parallel_map(
      widths.size() * n_samples,
      [&](std::size_t item) {
        const std::size_t k = item % n_samples;
        mc::Rng rng = core::sample_rng(cli.seed, k);
        mc::GaussianVariationSource var(model, rng);
        core::PathInstance inst = core::make_instance(factory, 0.0, &var);
        const auto w_out = core::output_pulse_width(
            inst.path, core::PulseKind::kH, widths[item / n_samples], sim);
        return w_out.value_or(0.0);
      },
      par);
  for (std::size_t item = 0; item < scatter.size(); ++item)
    s.add_row({util::format_double(widths[item / n_samples], 5),
               std::to_string(item % n_samples),
               util::format_double(scatter[item], 5)});
  if (cli.csv_only)
    std::cout << s.to_csv();
  else
    s.print(std::cout);

  // Spread summary per width: the attenuation region must show the largest
  // relative spread (the paper's argument for placing w_in past it).
  std::cout << "# per-width MC spread (max - min):\n";
  for (double w : widths) {
    std::vector<double> outs;
    for (std::size_t r = 0; r < s.rows(); ++r)
      if (s.row(r)[0] == util::format_double(w, 5))
        outs.push_back(std::stod(s.row(r)[2]));
    const auto st = mc::compute_stats(outs);
    std::cout << "#  w_in " << util::format_double(w, 3) << " s: spread "
              << util::format_double(st.max - st.min, 4) << " s, mean "
              << util::format_double(st.mean, 4) << " s\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
