// Figure 11: per-path test configuration for external ROPs in a C432-class
// benchmark. For each sensitizable path through a fault site: calibrate
// (w_in, w_th) with the Sect. 5 rule and compute the minimal detectable
// resistance R_min (the circle radius in the paper's figure). Expected
// shape: the best paths (smallest R_min) cluster at low (w_in, w_th).
//
// Flow: logic-level screening (path enumeration + sensitization ATPG +
// attenuation-model pre-estimates) -> electrical characterization of the
// surviving paths (the paper's own two-level plan: "in the case of more
// realistic circuits ... we need to operate at the logic level").
#include <iostream>

#include "bench_common.hpp"
#include "ppd/core/logic_bridge.hpp"
#include "ppd/core/rmin.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/sensitize.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

int run(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  bench::print_banner(std::cout, "Figure 11",
                      "(w_in, w_th, R_min) for paths with an external ROP in "
                      "the C432-class benchmark (synthetic substitute, see "
                      "DESIGN.md)",
                      cli);

  const logic::Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  std::cout << "# benchmark: " << nl.inputs().size() << " PIs, "
            << nl.outputs().size() << " POs, " << nl.gate_count()
            << " gates, depth " << nl.depth() << "\n";

  const auto lib = logic::GateTimingLibrary::generic();
  const int max_paths = std::max(3, static_cast<int>(10 * cli.scale));

  // Logic-level screening across fault sites.
  struct Candidate {
    std::string site;
    logic::Path path;
    std::vector<cells::GateKind> kinds;
    std::size_t fault_stage;
  };
  std::vector<Candidate> candidates;
  std::vector<std::string> seen_signatures;
  for (int gi = 0; gi < 160 && static_cast<int>(candidates.size()) < max_paths;
       gi += 7) {
    const std::string site = "G" + std::to_string(gi);
    if (!nl.has(site)) continue;
    const logic::NetId via = nl.find(site);
    for (const auto& path : logic::enumerate_paths_through(nl, via, 48)) {
      if (static_cast<int>(candidates.size()) >= max_paths) break;
      if (path.length() < 4 || path.length() > 9) continue;  // tractable span
      if (!logic::sensitize_path(nl, path).ok) continue;
      Candidate c;
      c.site = site;
      c.path = path;
      c.kinds = core::to_cell_kinds(nl, path);
      // Electrical fault stage: index of `via` along the extracted kinds.
      c.fault_stage = 0;
      for (std::size_t i = 1; i < path.nets.size(); ++i) {
        if (path.nets[i] == via) break;
        ++c.fault_stage;
      }
      // Deduplicate identical kind sequences + stage (same electrical case).
      std::string sig = std::to_string(c.fault_stage) + ":";
      for (auto k : c.kinds) sig += cells::gate_kind_name(k), sig += ',';
      bool dup = false;
      for (const auto& s : seen_signatures) dup = dup || s == sig;
      if (dup) continue;
      seen_signatures.push_back(sig);
      candidates.push_back(std::move(c));
    }
  }
  std::cout << "# " << candidates.size()
            << " sensitizable, electrically distinct paths selected\n";

  util::Table t({"site", "len", "w_in_ns", "w_th_ns", "R_min_ohm", "logic_w_req_ns"});
  const auto model = mc::VariationModel::uniform_sigma(cli.sigma);
  const int cal_samples = std::max(4, static_cast<int>(cli.samples * cli.scale / 5));

  for (const auto& c : candidates) {
    core::PathFactory factory;
    factory.options.kinds = c.kinds;
    faults::PathFaultSpec fault;
    fault.kind = faults::FaultKind::kExternalRopOutput;
    fault.stage = c.fault_stage;
    factory.fault = fault;

    core::PulseCalibrationOptions popt;
    popt.samples = cal_samples;
    popt.seed = cli.seed;
    popt.variation = model;

    std::string w_in_s = "infeasible", w_th_s = "-", r_min_s = "-";
    try {
      const auto cal = core::calibrate_pulse_test(factory, popt);
      core::RminOptions ropt;
      ropt.samples = std::max(3, cal_samples / 2);
      ropt.seed = cli.seed;
      ropt.variation = model;
      ropt.threads = cli.threads;
      ropt.resil = cli.resil;
      const auto rmin = core::find_r_min(factory, cal, ropt);
      w_in_s = util::format_double(cal.w_in * 1e9, 4);
      w_th_s = util::format_double(cal.w_th * 1e9, 4);
      r_min_s = rmin.detectable ? util::format_double(rmin.r_min, 4)
                                : "undetectable";
    } catch (const ppd::NumericalError&) {
      // Path cannot support a zero-false-positive pulse test: report as
      // infeasible rather than aborting the sweep.
    }
    // Logic-level pre-estimate of the required input width (cheap screen).
    const auto kinds = logic::path_kinds(nl, c.path);
    const auto w_req = logic::required_input_width(lib, kinds, 100e-12);
    t.add_row({c.site, std::to_string(c.kinds.size()), w_in_s, w_th_s, r_min_s,
               w_req ? util::format_double(*w_req * 1e9, 4) : ">2"});
  }
  if (cli.csv_only)
    std::cout << t.to_csv();
  else
    t.print(std::cout);
  std::cout << "# circle radius in the paper's figure ~ R_min; best paths "
               "have low (w_in, w_th)\n";
  return candidates.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
