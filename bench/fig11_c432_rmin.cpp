// Figure 11: per-path test configuration for external ROPs in a C432-class
// benchmark. For each sensitizable path through a fault site: calibrate
// (w_in, w_th) with the Sect. 5 rule and compute the minimal detectable
// resistance R_min (the circle radius in the paper's figure). Expected
// shape: the best paths (smallest R_min) cluster at low (w_in, w_th).
//
// Flow: logic-level screening (path enumeration + sensitization ATPG +
// attenuation-model pre-estimates) -> electrical characterization of the
// surviving paths (the paper's own two-level plan: "in the case of more
// realistic circuits ... we need to operate at the logic level").
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "ppd/core/path_screen.hpp"
#include "ppd/core/rmin.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

int run(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  bench::print_banner(std::cout, "Figure 11",
                      "(w_in, w_th, R_min) for paths with an external ROP in "
                      "the C432-class benchmark (synthetic substitute, see "
                      "DESIGN.md)",
                      cli);

  const logic::Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  std::cout << "# benchmark: " << nl.inputs().size() << " PIs, "
            << nl.outputs().size() << " POs, " << nl.gate_count()
            << " gates, depth " << nl.depth() << "\n";

  const auto lib = logic::GateTimingLibrary::generic();
  const int max_paths = std::max(3, static_cast<int>(10 * cli.scale));

  // Logic-level screening across fault sites: enumeration, sensitization
  // ATPG and the ppd::sta static pulse-survival screen, shared with the
  // coverage / R_min flows (see src/core/path_screen.hpp). The screen's
  // feasibility box matches the electrical calibration below (w_in grid top
  // 0.8 ns, sensing floor 50 ps), so a pulse-dead verdict means calibration
  // is provably infeasible.
  core::CandidateSelectionOptions copt;
  copt.max_candidates = static_cast<std::size_t>(max_paths);
  copt.screen_options.w_in_max = 0.8e-9;
  copt.screen_options.w_th_floor = 50e-12;
  const core::CandidateSelection sel = core::select_path_candidates(nl, lib, copt);
  std::cout << "# funnel: " << sel.enumerated << " enumerated, "
            << sel.length_rejected << " outside length window, "
            << sel.unsensitizable << " unsensitizable, " << sel.duplicates
            << " electrical duplicates -> " << sel.candidates.size()
            << " candidates; static screen: " << sel.pulse_dead
            << " provably pulse-dead, " << sel.kept.size() << " kept\n";

  util::Table t({"site", "len", "screen", "w_in_ns", "w_th_ns", "R_min_ohm",
                 "static_w_req_ns"});
  const auto model = mc::VariationModel::uniform_sigma(cli.sigma);
  const int cal_samples = std::max(4, static_cast<int>(cli.samples * cli.scale / 5));

  for (std::size_t ci = 0; ci < sel.candidates.size(); ++ci) {
    const core::PathCandidate& c = sel.candidates[ci];
    const sta::ScreenedPath* sp =
        ci < sel.screened.size() ? &sel.screened[ci] : nullptr;
    const bool dead = sp && sp->verdict != sta::Verdict::kKept;
    const std::string w_req_s =
        sp && std::isfinite(sp->w_required)
            ? util::format_double(sp->w_required * 1e9, 4)
            : "inf";

    // Screened-out paths are reported, not simulated: the verdict is a
    // proof that calibration cannot succeed inside the feasibility box.
    std::string w_in_s = "infeasible", w_th_s = "-", r_min_s = "-";
    if (dead) {
      w_in_s = "-";
    } else {
      core::PathFactory factory;
      factory.options.kinds = c.kinds;
      faults::PathFaultSpec fault;
      fault.kind = faults::FaultKind::kExternalRopOutput;
      fault.stage = c.fault_stage;
      factory.fault = fault;

      core::PulseCalibrationOptions popt;
      popt.samples = cal_samples;
      popt.seed = cli.seed;
      popt.variation = model;

      try {
        const auto cal = core::calibrate_pulse_test(factory, popt);
        core::RminOptions ropt;
        ropt.samples = std::max(3, cal_samples / 2);
        ropt.seed = cli.seed;
        ropt.variation = model;
        ropt.threads = cli.threads;
        ropt.resil = cli.resil;
        const auto rmin = core::find_r_min(factory, cal, ropt);
        w_in_s = util::format_double(cal.w_in * 1e9, 4);
        w_th_s = util::format_double(cal.w_th * 1e9, 4);
        r_min_s = rmin.detectable ? util::format_double(rmin.r_min, 4)
                                  : "undetectable";
      } catch (const ppd::NumericalError&) {
        // Path cannot support a zero-false-positive pulse test: report as
        // infeasible rather than aborting the sweep.
      }
    }
    t.add_row({c.site, std::to_string(c.kinds.size()),
               sp ? sta::verdict_name(sp->verdict) : "off", w_in_s, w_th_s,
               r_min_s, w_req_s});
  }
  if (cli.csv_only)
    std::cout << t.to_csv();
  else
    t.print(std::cout);
  std::cout << "# circle radius in the paper's figure ~ R_min; best paths "
               "have low (w_in, w_th)\n";
  return sel.candidates.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
