// Shared driver for the coverage figures (6-9): calibrate the requested
// method on the paper's 7-gate path, sweep the defect resistance, print the
// figure's series.
#pragma once

#include <iostream>

#include "bench_common.hpp"
#include "ppd/faults/fault.hpp"

namespace ppd::bench {

enum class Method { kDelay, kPulse };

inline int run_coverage_figure(int argc, const char* const* argv,
                               const std::string& figure, Method method,
                               const faults::PathFaultSpec& fault,
                               std::vector<double> resistances) {
  const auto cli = ExperimentCli::parse(argc, argv);
  core::PathFactory factory = paper_path_factory();
  factory.fault = fault;

  core::CoverageOptions copt;
  copt.samples = std::max(4, static_cast<int>(cli.samples * cli.scale));
  copt.seed = cli.seed;
  copt.variation = mc::VariationModel::uniform_sigma(cli.sigma);
  copt.resistances = std::move(resistances);
  copt.threads = cli.threads;
  copt.resil = cli.resil;

  if (method == Method::kDelay) {
    core::DelayCalibrationOptions dopt;
    dopt.samples = copt.samples;
    dopt.seed = cli.seed;
    dopt.variation = copt.variation;
    const auto cal = core::calibrate_delay_test(factory, dopt);
    print_banner(std::cout, figure,
                 std::string("C_del(R) for a ") +
                     faults::fault_kind_name(fault.kind) +
                     " at gate 2's output; clock T' in {0.9, 1.0, 1.1} x T0",
                 cli);
    std::cout << "# calibrated T0 = " << util::format_double(cal.t_nominal, 5)
              << " s (worst fault-free delay "
              << util::format_double(cal.worst_fault_free_delay, 5)
              << " s + FF overhead "
              << util::format_double(cal.flip_flops.overhead(), 4)
              << " s, 10% clock guard)\n";
    const auto res = core::run_delay_coverage(factory, cal, copt);
    print_coverage(std::cout, "T", res, cli.csv_only);
  } else {
    core::PulseCalibrationOptions popt;
    popt.samples = copt.samples;
    popt.seed = cli.seed;
    popt.variation = copt.variation;
    const auto cal = core::calibrate_pulse_test(factory, popt);
    print_banner(std::cout, figure,
                 std::string("C_pulse(R) for a ") +
                     faults::fault_kind_name(fault.kind) +
                     " at gate 2's output; threshold in {0.9, 1.0, 1.1} x w_th",
                 cli);
    std::cout << "# calibrated w_in = " << util::format_double(cal.w_in, 5)
              << " s, w_th = " << util::format_double(cal.w_th, 5)
              << " s (min fault-free w_out "
              << util::format_double(cal.min_fault_free_w_out, 5)
              << " s, 10% sensor guard)\n";
    const auto res = core::run_pulse_coverage(factory, cal, copt);
    print_coverage(std::cout, "wth", res, cli.csv_only);
  }
  return 0;
}

}  // namespace ppd::bench
