// Circuit-scale pulse-test generation — the experiment the paper's
// announced logic-level tool enables (our extension, not a paper figure):
//
//   STA -> non-critical (slack) fault sites -> ROP fault list ->
//   greedy pulse-test ATPG -> fault coverage vs defect resistance,
//
// on the C432-class benchmark. The point mirrors Figs. 6-9 at circuit
// scale: the pulse method covers slack-site opens that at-speed delay
// testing cannot see until the defect has eaten the whole slack.
#include <iostream>

#include "bench_common.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/faultsim.hpp"
#include "ppd/logic/sta.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

int run(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  bench::print_banner(std::cout, "Circuit-scale fault simulation (extension)",
                      "STA + pulse-test ATPG + fault coverage on the "
                      "C432-class benchmark",
                      cli);

  const logic::Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = logic::GateTimingLibrary::generic();
  const logic::StaResult sta = logic::run_sta(nl, lib);
  std::cout << "# benchmark: " << nl.gate_count() << " gates, critical delay "
            << util::format_double(sta.critical_delay * 1e9, 4) << " ns\n";

  // Fault sites: every gate with at least 20% of the cycle as slack —
  // exactly the defects at-speed testing cannot screen.
  const double min_slack = 0.20 * sta.critical_delay;
  const auto sites = logic::slack_sites(nl, sta, min_slack);
  std::cout << "# " << sites.size() << " of " << nl.gate_count()
            << " gates have slack >= "
            << util::format_double(min_slack * 1e9, 3) << " ns\n";

  const logic::FaultSimulator sim(nl, lib);
  util::Table t({"R_ohm", "faults", "pulse_cov", "tests", "compacted",
                 "atspeed_DF_cov", "reduced_DF_cov", "no_sens_path"});
  for (double r : {1e3, 2e3, 4e3, 8e3, 16e3, 32e3}) {
    const auto faults = logic::enumerate_rop_faults(sites, r);
    logic::AtpgOptions aopt;
    aopt.paths_per_site = static_cast<std::size_t>(32 * cli.scale);
    aopt.exec.threads = cli.threads;
    // Quarantine/injection carry into the fault-list sweeps; checkpointing
    // would clash across the many short sweeps per row, so drop it.
    aopt.exec.resil = cli.resil;
    aopt.exec.resil.checkpoint_path.clear();
    aopt.exec.resil.resume = false;
    const auto res = logic::generate_pulse_tests(sim, faults, aopt);
    const auto compacted =
        logic::compact_tests(sim, faults, res.tests, aopt.exec);
    // DF-testing comparison: at speed, and at a 40%-reduced clock (the
    // aggressive end of slack-interval testing).
    const auto df_at_speed =
        logic::run_delay_testing(sim, faults, logic::DelayTestModel{}, aopt);
    logic::DelayTestModel reduced;
    reduced.clock_period = 0.6 * (sta.critical_delay + reduced.ff_overhead);
    const auto df_reduced = logic::run_delay_testing(sim, faults, reduced, aopt);
    t.add_row({util::format_double(r, 4), std::to_string(res.faults_total),
               util::format_double(res.coverage.coverage(res.faults_total), 3),
               std::to_string(res.tests.size()),
               std::to_string(compacted.size()),
               util::format_double(df_at_speed.coverage(res.faults_total), 3),
               util::format_double(df_reduced.coverage(res.faults_total), 3),
               std::to_string(res.aborted)});
  }
  t.print(std::cout);
  std::cout
      << "# expectations: pulse coverage ramps with R and saturates at the\n"
         "# statically-true-path limit (greedy selection wiggles a little);\n"
         "# at-speed DF coverage is 0 BY CONSTRUCTION (every fault hides\n"
         "# behind >= 20% slack); even a 40%-reduced clock trails the pulse\n"
         "# method until the defect is huge. 'no_sens_path' counts faults\n"
         "# with no two-phase-sensitizable path among the candidates.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
