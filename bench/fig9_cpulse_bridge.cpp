// Figure 9: pulse-testing coverage C_pulse(R) for a resistive bridging
// fault — the paper's headline result. The injected pulse keeps being
// dampened far beyond the resistance where the bridge's extra transition
// delay has become negligible, so the pulse method covers a much wider R
// range than reduced-clock DF testing (Fig. 8).
#include "coverage_common.hpp"

int main(int argc, char** argv) {
  ppd::faults::PathFaultSpec fault;
  fault.kind = ppd::faults::FaultKind::kBridge;
  fault.stage = ppd::bench::kPaperFaultStage;
  fault.aggressor_high = false;
  return ppd::bench::run_coverage_figure(
      argc, argv, "Figure 9", ppd::bench::Method::kPulse, fault,
      ppd::core::logspace(1.2e3, 64e3, 13));
}
