// Figure 7: pulse-testing coverage C_pulse(R) for an external resistive
// open, at sensing thresholds 0.9/1.0/1.1 x w_th. Expected shape: sigmoid
// comparable to Fig. 6 at nominal, but far less sensitive to the threshold
// variation than DF testing is to the clock period (local generation and
// detection — no clock distribution network in the loop).
#include "coverage_common.hpp"

int main(int argc, char** argv) {
  ppd::faults::PathFaultSpec fault;
  fault.kind = ppd::faults::FaultKind::kExternalRopOutput;
  fault.stage = ppd::bench::kPaperFaultStage;
  return ppd::bench::run_coverage_figure(
      argc, argv, "Figure 7", ppd::bench::Method::kPulse, fault,
      ppd::core::logspace(1e3, 128e3, 13));
}
