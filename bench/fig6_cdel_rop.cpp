// Figure 6: delay-fault-testing coverage C_del(R) for an external resistive
// open, at applied clocks 0.9/1.0/1.1 x T0. Expected shape: sigmoid rising
// with R, shifted strongly by the +/-10% clock-period uncertainty — the
// baseline's weakness the paper contrasts against.
#include "coverage_common.hpp"

int main(int argc, char** argv) {
  ppd::faults::PathFaultSpec fault;
  fault.kind = ppd::faults::FaultKind::kExternalRopOutput;
  fault.stage = ppd::bench::kPaperFaultStage;
  return ppd::bench::run_coverage_figure(
      argc, argv, "Figure 6", ppd::bench::Method::kDelay, fault,
      ppd::core::logspace(1e3, 128e3, 13));
}
