// Ablations over the design decisions DESIGN.md calls out:
//   A1  Monte-Carlo sigma sweep: how parameter spread moves the calibrated
//       test parameters and shrinks the detectable-R range.
//   A2  Integrator: trapezoidal vs backward Euler on the measured delay and
//       pulse width (numerical damping check).
//   A3  Internal vs external ROP detectability at a fixed w_in (the paper's
//       claim that external opens are the pulse method's worst case).
//   A4  Pulse polarity h vs l on the mixed path.
//   A5  Calibration rule: w_in at the asymptotic onset vs inside the
//       attenuation region — false-positive count under sensor variation.
#include <iostream>

#include "bench_common.hpp"
#include "ppd/cells/dff.hpp"
#include "ppd/cells/sensor.hpp"
#include "ppd/core/logic_bridge.hpp"
#include "ppd/core/rmin.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

void ablation_sigma(const bench::ExperimentCli& cli) {
  std::cout << "\n# --- A1: MC sigma sweep (external ROP) ---\n";
  util::Table t({"sigma", "T0_ns", "w_in_ns", "w_th_ns", "R_min_ohm"});
  core::PathFactory f = bench::paper_path_factory();
  faults::PathFaultSpec fault;
  fault.kind = faults::FaultKind::kExternalRopOutput;
  fault.stage = bench::kPaperFaultStage;
  f.fault = fault;
  const int samples = std::max(4, static_cast<int>(cli.samples * cli.scale / 3));
  for (double sigma : {0.01, 0.03, 0.05, 0.08}) {
    const auto model = mc::VariationModel::uniform_sigma(sigma);
    core::DelayCalibrationOptions dopt;
    dopt.samples = samples;
    dopt.seed = cli.seed;
    dopt.variation = model;
    const auto dcal = core::calibrate_delay_test(f, dopt);
    core::PulseCalibrationOptions popt;
    popt.samples = samples;
    popt.seed = cli.seed;
    popt.variation = model;
    const auto pcal = core::calibrate_pulse_test(f, popt);
    core::RminOptions ropt;
    ropt.samples = std::max(3, samples / 2);
    ropt.seed = cli.seed;
    ropt.variation = model;
    ropt.threads = cli.threads;
    const auto rmin = core::find_r_min(f, pcal, ropt);
    t.add_row({util::format_double(sigma, 3),
               util::format_double(dcal.t_nominal * 1e9, 4),
               util::format_double(pcal.w_in * 1e9, 4),
               util::format_double(pcal.w_th * 1e9, 4),
               rmin.detectable ? util::format_double(rmin.r_min, 4) : "n/a"});
  }
  t.print(std::cout);
  std::cout << "# expectation: larger sigma -> larger T0, lower w_th, larger "
               "R_min (quality traded for yield)\n";
}

void ablation_integrator(const bench::ExperimentCli&) {
  std::cout << "\n# --- A2: integrator / step control ---\n";
  util::Table t({"config", "delay_ps", "w_out_ps"});
  const core::PathFactory f = bench::paper_path_factory();
  struct Cfg {
    const char* name;
    spice::Integrator integ;
    bool adaptive;
    double dt;
  };
  for (const Cfg& cfg : {Cfg{"TRAP fixed 1ps", spice::Integrator::kTrapezoidal, false, 1e-12},
                         Cfg{"TRAP fixed 2ps", spice::Integrator::kTrapezoidal, false, 2e-12},
                         Cfg{"TRAP adaptive", spice::Integrator::kTrapezoidal, true, 2e-12},
                         Cfg{"BE fixed 2ps", spice::Integrator::kBackwardEuler, false, 2e-12},
                         Cfg{"BE adaptive", spice::Integrator::kBackwardEuler, true, 2e-12}}) {
    core::SimSettings sim;
    sim.integrator = cfg.integ;
    sim.adaptive = cfg.adaptive;
    sim.dt = cfg.dt;
    core::PathInstance a = core::make_instance(f, 0.0, nullptr);
    const auto d = core::path_delay(a.path, true, sim);
    core::PathInstance b = core::make_instance(f, 0.0, nullptr);
    const auto w = core::output_pulse_width(b.path, core::PulseKind::kH,
                                            0.35e-9, sim);
    t.add_row({cfg.name, util::format_double(d.value_or(0) * 1e12, 5),
               util::format_double(w.value_or(0) * 1e12, 5)});
  }
  t.print(std::cout);
  std::cout << "# expectation: BE's numerical damping shaves pulse width; "
               "adaptive tracks fixed within a few ps\n";
}

void ablation_fault_kind(const bench::ExperimentCli&) {
  std::cout << "\n# --- A3: internal vs external ROP, w_out(R) at w_in = "
               "0.35 ns ---\n";
  util::Table t({"R_ohm", "w_out_ps_internal", "w_out_ps_external",
                 "w_out_ps_branch"});
  const core::SimSettings sim;
  for (double r : {1e3, 2e3, 4e3, 8e3, 16e3, 32e3}) {
    std::vector<std::string> row{util::format_double(r, 4)};
    for (auto kind : {faults::FaultKind::kInternalRopPullUp,
                      faults::FaultKind::kExternalRopOutput,
                      faults::FaultKind::kExternalRopBranch}) {
      core::PathFactory f = bench::paper_path_factory();
      faults::PathFaultSpec fault;
      fault.kind = kind;
      fault.stage = bench::kPaperFaultStage;
      f.fault = fault;
      core::PathInstance inst = core::make_instance(f, r, nullptr);
      const auto w =
          core::output_pulse_width(inst.path, core::PulseKind::kH, 0.35e-9, sim);
      row.push_back(w ? util::format_double(*w * 1e12, 5) : "0 (dampened)");
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "# expectation: internal ROP dampens at the lowest R "
               "(one-edge attack); external output ROP is the worst case "
               "for the method\n";
}

void ablation_polarity(const bench::ExperimentCli&) {
  std::cout << "\n# --- A4: pulse polarity h vs l (external ROP) ---\n";
  util::Table t({"R_ohm", "w_out_ps_h", "w_out_ps_l"});
  const core::SimSettings sim;
  for (double r : {4e3, 8e3, 16e3, 32e3}) {
    core::PathFactory f = bench::paper_path_factory();
    faults::PathFaultSpec fault;
    fault.kind = faults::FaultKind::kExternalRopOutput;
    fault.stage = bench::kPaperFaultStage;
    f.fault = fault;
    core::PathInstance a = core::make_instance(f, r, nullptr);
    const auto wh =
        core::output_pulse_width(a.path, core::PulseKind::kH, 0.35e-9, sim);
    core::PathInstance b = core::make_instance(f, r, nullptr);
    const auto wl =
        core::output_pulse_width(b.path, core::PulseKind::kL, 0.35e-9, sim);
    t.add_row({util::format_double(r, 4),
               wh ? util::format_double(*wh * 1e12, 5) : "0 (dampened)",
               wl ? util::format_double(*wl * 1e12, 5) : "0 (dampened)"});
  }
  t.print(std::cout);
  std::cout << "# the two pulse kinds stress opposite networks of each gate; "
               "test generation picks per fault\n";
}

void ablation_calibration_rule(const bench::ExperimentCli& cli) {
  std::cout << "\n# --- A5: w_in placement: asymptotic onset vs attenuation "
               "region ---\n";
  // Count MC false positives when w_in sits inside the attenuation region
  // with a threshold derived the same way.
  const core::PathFactory f = bench::paper_path_factory();
  const core::SimSettings sim;
  const auto model = mc::VariationModel::uniform_sigma(cli.sigma);
  const int samples = std::max(8, static_cast<int>(cli.samples * cli.scale / 2));

  core::PulseCalibrationOptions popt;
  popt.samples = samples;
  popt.seed = cli.seed;
  popt.variation = model;
  const auto cal = core::calibrate_pulse_test(f, popt);

  // Adversarial variant: w_in in the attenuation region, w_th from the
  // *nominal* curve with the same guard (what a naive calibration would do).
  core::PathInstance nominal = core::make_instance(f, 0.0, nullptr);
  const double w_in_bad = 0.55 * cal.w_in;
  const auto w_nom = core::output_pulse_width(nominal.path, cal.kind, w_in_bad, sim);
  const double w_th_bad = w_nom.value_or(0.0) * 0.7;

  int fp_good = 0, fp_bad = 0;
  for (int s = 0; s < samples; ++s) {
    mc::Rng rng = core::sample_rng(cli.seed + 99, static_cast<std::size_t>(s));
    mc::GaussianVariationSource var(model, rng);
    core::PathInstance i1 = core::make_instance(f, 0.0, &var);
    const auto w1 = core::output_pulse_width(i1.path, cal.kind, cal.w_in, sim);
    if (core::pulse_detects(w1, cal.w_th * (1.0 + popt.sensor_guard))) ++fp_good;
    mc::Rng rng2 = core::sample_rng(cli.seed + 99, static_cast<std::size_t>(s));
    mc::GaussianVariationSource var2(model, rng2);
    core::PathInstance i2 = core::make_instance(f, 0.0, &var2);
    const auto w2 = core::output_pulse_width(i2.path, cal.kind, w_in_bad, sim);
    if (core::pulse_detects(w2, w_th_bad * (1.0 + popt.sensor_guard))) ++fp_bad;
  }
  std::cout << "# asymptotic-onset rule  (w_in = "
            << util::format_double(cal.w_in * 1e9, 4) << " ns): " << fp_good
            << "/" << samples << " false positives\n"
            << "# attenuation-region w_in (w_in = "
            << util::format_double(w_in_bad * 1e9, 4) << " ns): " << fp_bad
            << "/" << samples << " false positives\n"
            << "# expectation: the attenuation region's MC spread produces "
               "massive yield loss; the paper's rule avoids it (note: the FP "
               "count here is out-of-sample — calibration guarantees zero "
               "only on its own MC population, so an occasional tail escape "
               "is honest behaviour)\n";
}

void ablation_hardware(const bench::ExperimentCli&) {
  std::cout << "\n# --- A6: hardware realizations of the test circuitry ---\n";
  // Pulse catcher: measured width threshold vs delay-chain length (the
  // silicon knob behind the behavioural w_th).
  const cells::Process proc;
  util::Table t({"sensor_delay_stages", "measured_w_th_ps"});
  for (int stages : {2, 4, 6, 8}) {
    cells::PulseCatcherOptions o;
    o.delay_stages = stages;
    auto caught = [&](double width) {
      cells::Netlist nl(proc);
      auto& c = nl.circuit();
      const spice::NodeId x = c.node("x");
      spice::Pulse p;
      p.v2 = proc.vdd;
      p.delay = 0.5e-9;
      p.rise = 30e-12;
      p.fall = 30e-12;
      p.width = width;
      c.add_vsource("Vx", x, spice::kGround, p);
      const cells::PulseCatcher pc = cells::add_pulse_catcher(nl, "pc", x, o);
      spice::TransientOptions topt;
      topt.t_stop = 3e-9;
      topt.dt = 2e-12;
      topt.adaptive = true;
      return spice::run_transient(c, topt).wave(pc.caught).at(topt.t_stop) >
             proc.vdd / 2;
    };
    double lo = 10e-12, hi = 600e-12;
    for (int i = 0; i < 7; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (caught(mid))
        hi = mid;
      else
        lo = mid;
    }
    t.add_row({std::to_string(stages), util::format_double(hi * 1e12, 4)});
  }
  t.print(std::cout);
  // Flip-flop: the DF-test budget, measured from the TG master-slave cell.
  const cells::MeasuredFfTiming ff = cells::measure_ff_timing(proc);
  std::cout << "# transmission-gate DFF: clk-to-Q = "
            << util::format_double(ff.clk_to_q * 1e12, 4)
            << " ps, setup = " << util::format_double(ff.setup * 1e12, 4)
            << " ps (the DF baseline budgets 60 + 40 ps)\n"
            << "# expectation: the sensing threshold is a designable silicon\n"
            << "# quantity (delay stages), and the assumed FF budget matches\n"
            << "# the measured cell within a few ps\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  bench::print_banner(std::cout, "Ablations",
                      "design-decision ablations (A1-A6), see DESIGN.md", cli);
  ablation_sigma(cli);
  ablation_integrator(cli);
  ablation_fault_kind(cli);
  ablation_polarity(cli);
  ablation_calibration_rule(cli);
  ablation_hardware(cli);
  return 0;
}
