// Engine micro/meso benchmarks (google-benchmark): solver throughput,
// transistor-level transient cost vs path length, logic-level event
// simulation, and path sensitization — the costs that size every
// Monte-Carlo experiment in this repository. A thread-scaling section runs
// first and prints machine-readable JSON rows for the perf trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/core/coverage.hpp"
#include "ppd/core/measure.hpp"
#include "ppd/core/path_screen.hpp"
#include "ppd/core/pulse_test.hpp"
#include "ppd/core/rmin.hpp"
#include "ppd/linalg/dense.hpp"
#include "ppd/linalg/sparse.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/sensitize.hpp"
#include "ppd/logic/sim.hpp"
#include "ppd/mc/rng.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/util/error.hpp"

namespace {

using namespace ppd;

// ---------------------------------------------------------------------------
// Thread-scaling section: a fixed 50-sample delay-coverage sweep (the shape
// of every Fig. 6-9 experiment) at 1/2/4/hw threads. Rows are JSON so the
// perf trajectory is machine-readable; `identical_to_serial` asserts the
// ppd::exec determinism contract on the full CoverageResult.
// ---------------------------------------------------------------------------

void run_thread_scaling() {
  core::PathFactory factory;
  factory.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec fault;
  fault.kind = faults::FaultKind::kExternalRopOutput;
  fault.stage = 1;
  factory.fault = fault;

  // Fixed calibration: the section measures the sweep, not the calibration.
  core::DelayTestCalibration cal;
  cal.t_nominal = 0.6e-9;

  core::CoverageOptions copt;
  copt.samples = 50;
  copt.seed = 2007;
  copt.variation = mc::VariationModel::uniform_sigma(0.05);
  copt.resistances = {2e3, 8e3, 32e3, 128e3};

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::set<int> counts{1, 2, 4, static_cast<int>(hw)};

  // Standard meta row first, so a JSON consumer can key the perf trajectory
  // on seed / build flags / timestamp without scraping benchmark output.
  std::printf("{\"section\":\"meta\",\"meta\":%s}\n",
              obs::run_meta_json(copt.seed, 0).c_str());

  core::CoverageResult serial;
  double serial_wall = 0.0;
  for (int threads : counts) {
    copt.threads = threads;
    // Fresh cache per run: this section measures thread scaling, and a
    // warm solve cache would otherwise let every run after the first
    // replay the previous run's measurements.
    cache::SolveCache::global().clear();
    const auto start = std::chrono::steady_clock::now();
    const core::CoverageResult res = run_delay_coverage(factory, cal, copt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (threads == 1) {
      serial = res;
      serial_wall = wall;
    }
    const bool identical = res.coverage == serial.coverage &&
                           res.simulations == serial.simulations;
    std::printf(
        "{\"section\":\"thread_scaling\",\"workload\":\"delay_coverage\","
        "\"samples\":%d,\"resistances\":%zu,\"hardware_threads\":%u,"
        "\"threads\":%d,\"wall_s\":%.4f,\"speedup_vs_1\":%.3f,"
        "\"identical_to_serial\":%s}\n",
        copt.samples, copt.resistances.size(), hw, threads, wall,
        serial_wall / wall, identical ? "true" : "false");
  }
}

// ---------------------------------------------------------------------------
// Batched-MC-kernel section: one long faulty path, the same MC coverage
// population measured by the scalar per-sample transient and by the
// factor-once/solve-many spice::BatchTransient, at equal thread count (1) so
// the row isolates the kernel itself from thread scaling and cache reuse.
// Fixed step + backward Euler: the regime where the batch advances every
// sample in lock-step and the fixed-step bit-identity contract applies
// (`identical` compares the full coverage populations). The long chain
// (100 gates, n = 204 unknowns, sparse solver) is what makes the scalar
// from-scratch assemble + symbolic-and-numeric LU expensive; the batch path
// replaces it with selective restamping and in-place refactorization.
// Measured on the reference 1-core container: ~4-4.5x. The floor in
// bench/baseline/perf_engine.json sits at 3.0x; see README "Batched MC
// kernel" for the cost decomposition and why the workload pins threads=1.
// ---------------------------------------------------------------------------

void run_mc_batch_section() {
  constexpr int kGates = 100;
  core::PathFactory factory;
  factory.options.kinds.assign(kGates, cells::GateKind::kInv);
  faults::PathFaultSpec fault;
  fault.kind = faults::FaultKind::kExternalRopOutput;
  fault.stage = kGates / 2;
  factory.fault = fault;

  // Fixed calibration scaled to the chain length (the section measures the
  // sweep, not the calibration); the settle tail must cover the long chain's
  // propagation, since t_stop does not scale with gate count.
  core::DelayTestCalibration cal;
  cal.t_nominal = 0.2e-9 * kGates;

  core::CoverageOptions copt;
  copt.samples = 2;
  copt.seed = 2007;
  copt.variation = mc::VariationModel::uniform_sigma(0.05);
  copt.resistances = {8e3, 32e3};
  copt.threads = 1;
  copt.sim.adaptive = false;
  copt.sim.integrator = spice::Integrator::kBackwardEuler;
  copt.sim.t_tail = 9.5e-9;

  const auto timed = [&](bool batch) {
    copt.batch = batch;
    // Fresh cache per pass: a warm solve cache would let the second pass
    // replay the first and the row would measure memoization, not the kernel.
    cache::SolveCache::global().clear();
    const auto start = std::chrono::steady_clock::now();
    core::CoverageResult res = run_delay_coverage(factory, cal, copt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::pair<double, core::CoverageResult>(wall, std::move(res));
  };

  auto& steps = obs::counter("spice.transient.steps");
  const std::uint64_t steps0 = steps.value();
  const auto [scalar_wall, scalar] = timed(false);
  const std::uint64_t steps_scalar = steps.value() - steps0;
  const auto [batch_wall, batch] = timed(true);
  const std::uint64_t steps_batch = steps.value() - steps0 - steps_scalar;

  const bool identical = scalar.coverage == batch.coverage &&
                         scalar.simulations == batch.simulations;
  std::printf(
      "{\"section\":\"mc_batch\",\"workload\":\"delay_coverage_fixed_step\","
      "\"gates\":%d,\"samples\":%d,\"resistances\":%zu,\"threads\":%d,"
      "\"scalar_wall_s\":%.4f,\"batch_wall_s\":%.4f,"
      "\"scalar_steps\":%llu,\"batch_steps\":%llu,"
      "\"speedup\":%.3f,\"identical\":%s}\n",
      kGates, copt.samples, copt.resistances.size(), copt.threads, scalar_wall,
      batch_wall, static_cast<unsigned long long>(steps_scalar),
      static_cast<unsigned long long>(steps_batch), scalar_wall / batch_wall,
      identical ? "true" : "false");
}

// ---------------------------------------------------------------------------
// Solve-cache section: the Fig. 7/11 inner loop (pulse coverage + r_min
// bisection over the same MC population) cold vs warm. The cold pass runs
// against an empty cache; the warm pass replays the identical workload and
// hits the memoized measurements and warm-started operating points. The JSON
// row carries the speedup (target >= 1.5x) and asserts bit-identity.
// ---------------------------------------------------------------------------

void run_solve_cache_section() {
  core::PathFactory factory;
  factory.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec fault;
  fault.kind = faults::FaultKind::kExternalRopOutput;
  fault.stage = 1;
  factory.fault = fault;

  core::PulseCalibrationOptions popt;
  popt.samples = 4;
  popt.seed = 2007;
  popt.variation = mc::VariationModel::uniform_sigma(0.05);
  popt.w_in_grid = core::linspace(0.10e-9, 0.60e-9, 11);

  core::CoverageOptions copt;
  copt.samples = 12;
  copt.seed = 2007;
  copt.variation = mc::VariationModel::uniform_sigma(0.05);
  copt.resistances = {2e3, 8e3, 32e3, 128e3};
  copt.threads = 1;  // measure cache reuse, not thread scaling

  core::RminOptions ropt;
  ropt.samples = 6;
  ropt.seed = 2007;
  ropt.variation = mc::VariationModel::uniform_sigma(0.05);
  ropt.r_lo = 500.0;
  ropt.r_hi = 500e3;
  ropt.bisection_steps = 6;
  ropt.threads = 1;

  const auto workload = [&] {
    const core::PulseTestCalibration cal = core::calibrate_pulse_test(factory, popt);
    const core::CoverageResult cov = core::run_pulse_coverage(factory, cal, copt);
    const core::RminResult rmin = core::find_r_min(factory, cal, ropt);
    return std::pair<core::CoverageResult, core::RminResult>(cov, rmin);
  };
  const auto timed = [&] {
    const auto start = std::chrono::steady_clock::now();
    auto result = workload();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::pair<double, decltype(result)>(wall, std::move(result));
  };

  cache::SolveCache& cache = cache::SolveCache::global();
  cache.clear();
  const auto [cold_wall, cold] = timed();
  const auto cold_totals = cache.totals();
  const auto [warm_wall, warm] = timed();
  const auto warm_totals = cache.totals();

  const bool identical =
      cold.first.coverage == warm.first.coverage &&
      cold.first.simulations == warm.first.simulations &&
      cold.second.r_min == warm.second.r_min &&
      cold.second.detectable == warm.second.detectable;
  std::printf(
      "{\"section\":\"solve_cache\",\"workload\":\"calibrate+coverage+rmin\","
      "\"cold_wall_s\":%.4f,\"warm_wall_s\":%.4f,\"speedup\":%.3f,"
      "\"cold_hits\":%llu,\"warm_hits\":%llu,\"misses\":%llu,"
      "\"entries\":%zu,\"identical\":%s}\n",
      cold_wall, warm_wall, cold_wall / warm_wall,
      static_cast<unsigned long long>(cold_totals.hits),
      static_cast<unsigned long long>(warm_totals.hits - cold_totals.hits),
      static_cast<unsigned long long>(warm_totals.misses),
      warm_totals.entries, identical ? "true" : "false");
}

// ---------------------------------------------------------------------------
// Path-screen section: prune effectiveness of the ppd::sta static screen on
// the constrained-generator c432-class workload (the same workload
// tests/sta/screen_validation_test.cpp cross-validates; keep in sync). The
// brute-force flow calibrates every candidate path; the screened flow only
// the statically surviving ones. The JSON row carries candidates
// before/after, the SPICE transients saved (target >= 3x), and asserts the
// safety contract: zero missed detections and bit-identical kept results.
// ---------------------------------------------------------------------------

void run_path_screen_section() {
  const logic::Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = logic::GateTimingLibrary::generic();

  core::CandidateSelectionOptions copt;
  copt.max_candidates = 12;
  copt.min_length = 3;
  copt.screen_options.w_in_max = 0.155e-9;
  copt.screen_options.w_th_floor = 50e-12;
  copt.screen_options.margin = 0.10;
  const core::CandidateSelection sel = core::select_path_candidates(nl, lib, copt);

  core::PulseCalibrationOptions popt;
  popt.samples = 3;
  popt.seed = 2007;
  popt.variation = mc::VariationModel::uniform_sigma(0.05);
  popt.w_in_grid = core::linspace(0.07e-9, copt.screen_options.w_in_max, 7);
  popt.w_th_floor = copt.screen_options.w_th_floor;

  struct Outcome {
    bool feasible = false;
    double w_in = 0.0, w_th = 0.0;
  };
  const auto characterize = [&](const core::PathCandidate& c) {
    core::PathFactory factory;
    factory.options.kinds = c.kinds;
    faults::PathFaultSpec fault;
    fault.kind = faults::FaultKind::kExternalRopOutput;
    fault.stage = c.fault_stage;
    factory.fault = fault;
    Outcome out;
    try {
      const auto cal = core::calibrate_pulse_test(factory, popt);
      out.feasible = true;
      out.w_in = cal.w_in;
      out.w_th = cal.w_th;
    } catch (const ppd::NumericalError&) {
    }
    return out;
  };
  auto& sims = obs::counter("spice.transient.runs");

  // Brute force: every candidate path goes to SPICE calibration.
  cache::SolveCache::global().clear();
  const std::uint64_t brute_sims0 = sims.value();
  std::vector<Outcome> brute;
  for (const auto& c : sel.candidates) brute.push_back(characterize(c));
  const std::uint64_t sims_brute = sims.value() - brute_sims0;

  // Screened: only the statically surviving paths do.
  cache::SolveCache::global().clear();
  const std::uint64_t screened_sims0 = sims.value();
  std::vector<Outcome> kept;
  for (std::size_t idx : sel.kept) kept.push_back(characterize(sel.candidates[idx]));
  const std::uint64_t sims_screened = sims.value() - screened_sims0;

  // Safety contract, cross-checked right here: a screened-out path that
  // calibrated in the brute-force flow is a missed detection; a kept path
  // whose results differ breaks bit-identity.
  std::size_t missed = 0;
  for (std::size_t i = 0, k = 0; i < sel.candidates.size(); ++i) {
    const bool is_kept = k < sel.kept.size() && sel.kept[k] == i;
    if (!is_kept && brute[i].feasible) ++missed;
    if (is_kept) ++k;
  }
  bool identical = true;
  for (std::size_t k = 0; k < sel.kept.size(); ++k) {
    const Outcome& b = brute[sel.kept[k]];
    identical = identical && b.feasible == kept[k].feasible &&
                b.w_in == kept[k].w_in && b.w_th == kept[k].w_th;
  }

  std::printf(
      "{\"section\":\"path_screen\",\"workload\":\"c432_constrained_generator\","
      "\"w_in_max_s\":%.3e,\"candidates\":%zu,\"kept\":%zu,\"pulse_dead\":%zu,"
      "\"sims_brute\":%llu,\"sims_screened\":%llu,\"saved_ratio\":%.2f,"
      "\"missed_detections\":%zu,\"identical\":%s}\n",
      copt.screen_options.w_in_max, sel.candidates.size(), sel.kept.size(),
      sel.pulse_dead, static_cast<unsigned long long>(sims_brute),
      static_cast<unsigned long long>(sims_screened),
      sims_screened ? static_cast<double>(sims_brute) /
                          static_cast<double>(sims_screened)
                    : 0.0,
      missed, identical ? "true" : "false");
}

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mc::Rng rng(7);
  linalg::DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    linalg::DenseLu lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(48)->Arg(96);

void BM_SparseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Circuit-like pattern: a ladder (diagonal + neighbours) plus one sparse
  // long-range coupling per row — random dense-ish patterns would just
  // measure fill-in, which MNA matrices don't exhibit.
  mc::Rng rng(7);
  linalg::SparseBuilder b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    b.add(r, r, 4.0);
    if (r > 0) b.add(r, r - 1, rng.uniform(-1.0, 1.0));
    if (r + 1 < n) b.add(r, r + 1, rng.uniform(-1.0, 1.0));
    b.add(r, rng.below(n), rng.uniform(-0.2, 0.2));
  }
  const linalg::SparseMatrix a(b);
  std::vector<double> rhs(n, 1.0);
  for (auto _ : state) {
    linalg::SparseLu lu(a);
    benchmark::DoNotOptimize(lu.solve(rhs));
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(48)->Arg(192)->Arg(768);

void BM_PathTransient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::PathFactory f;
  f.options.kinds.assign(n, cells::GateKind::kInv);
  core::SimSettings sim;
  for (auto _ : state) {
    core::PathInstance inst = core::make_instance(f, 0.0, nullptr);
    benchmark::DoNotOptimize(
        core::output_pulse_width(inst.path, core::PulseKind::kH, 0.4e-9, sim));
  }
}
BENCHMARK(BM_PathTransient)->Arg(3)->Arg(7)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_LogicEventSim(benchmark::State& state) {
  const logic::Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  std::vector<logic::Stimulus> stim(nl.inputs().size());
  for (std::size_t i = 0; i < stim.size(); ++i)
    stim[i] = logic::Stimulus::pulse(false, 1e-9 + static_cast<double>(i) * 1e-11,
                                     0.4e-9);
  for (auto _ : state)
    benchmark::DoNotOptimize(logic::simulate(nl, stim));
}
BENCHMARK(BM_LogicEventSim)->Unit(benchmark::kMicrosecond);

void BM_SensitizePath(benchmark::State& state) {
  const logic::Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto paths = logic::enumerate_paths_through(nl, nl.find("G110"), 24);
  for (auto _ : state) {
    int ok = 0;
    for (const auto& p : paths)
      if (logic::sensitize_path(nl, p).ok) ++ok;
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SensitizePath)->Unit(benchmark::kMicrosecond);

void BM_CircuitBuild(benchmark::State& state) {
  core::PathFactory f;
  f.options = cells::seven_gate_path();
  for (auto _ : state) {
    core::PathInstance inst = core::make_instance(f, 0.0, nullptr);
    benchmark::DoNotOptimize(inst.path.netlist().circuit().device_count());
  }
}
BENCHMARK(BM_CircuitBuild)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Obs flags come off first; google-benchmark rejects flags it does not
  // know, so they must never reach Initialize.
  ppd::obs::ScopedRun run(ppd::obs::extract_run_options(argc, argv));
  run.set_meta(2007, 0);
  run_thread_scaling();
  run_mc_batch_section();
  run_solve_cache_section();
  run_path_screen_section();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
