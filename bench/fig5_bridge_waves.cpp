// Figure 5: faulty vs fault-free waveforms for a resistive bridging fault
// between two gate outputs (Fig. 4 circuit), at a resistance just above the
// critical value. The aggressor holds its level; the victim's pulse becomes
// incomplete and dies within a few logic levels even though the extra delay
// on a single transition is modest.
#include <iostream>

#include "bench_common.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

int run(int argc, char** argv) {
  const auto cli = bench::ExperimentCli::parse(argc, argv);
  const double r_fault = 1.2e3;  // just above the ~1 kOhm critical value
  bench::print_banner(std::cout, "Figure 5",
                      "pulse through externally-bridged path (R = 1.2 kOhm, "
                      "aggressor steady low), signals A -> B -> C -> D",
                      cli);

  cells::PathOptions po;
  po.kinds.assign(6, cells::GateKind::kInv);
  const double w_in = 0.35e-9;
  spice::TransientOptions topt;
  topt.t_stop = 2.5e-9;
  topt.dt = 2e-12;

  cells::Path faulty = cells::build_path(cells::Process{}, po);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kBridge;
  spec.stage = 1;
  spec.aggressor_high = false;  // fights the victim's rising pulse
  (void)faults::inject_on_path(faulty, spec, r_fault);
  faulty.drive_pulse(true, w_in, 0.3e-9);
  const auto res_faulty = spice::run_transient(faulty.netlist().circuit(), topt);

  cells::Path clean = cells::build_path(cells::Process{}, po);
  clean.drive_pulse(true, w_in, 0.3e-9);
  const auto res_free = spice::run_transient(clean.netlist().circuit(), topt);

  const std::vector<std::string> labels{"A", "B", "C", "D", "E", "F"};
  std::vector<const wave::Waveform*> wf, wc;
  for (std::size_t i = 0; i < 6; ++i) {
    wf.push_back(&res_faulty.wave(faulty.stage_outputs()[i]));
    wc.push_back(&res_free.wave(clean.stage_outputs()[i]));
  }
  bench::print_waveforms(std::cout, cells::Process{}.vdd, labels, wf, wc,
                         cli.csv_only);

  const double vdd = cells::Process{}.vdd;
  const auto w_out_faulty = wave::pulse_width(*wf.back(), vdd / 2, true);
  const auto w_out_free = wave::pulse_width(*wc.back(), vdd / 2, true);
  std::cout << "# victim peak (faulty B): "
            << util::format_double(wf[1]->max_value(), 4) << " V of "
            << util::format_double(vdd, 3) << " V\n"
            << "# pulse width at path output, fault-free: "
            << (w_out_free ? util::format_double(*w_out_free, 4) : "none")
            << " s, faulty: "
            << (w_out_faulty ? util::format_double(*w_out_faulty, 4)
                             : "dampened")
            << "\n";
  return w_out_free.has_value() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
