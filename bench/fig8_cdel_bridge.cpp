// Figure 8: delay-fault-testing coverage C_del(R) for a resistive bridging
// fault. Expected shape: full coverage just above the critical resistance
// (huge extra delay), collapsing rapidly as R grows because the additional
// delay shrinks below the path's slack.
#include "coverage_common.hpp"

int main(int argc, char** argv) {
  ppd::faults::PathFaultSpec fault;
  fault.kind = ppd::faults::FaultKind::kBridge;
  fault.stage = ppd::bench::kPaperFaultStage;
  fault.aggressor_high = false;
  return ppd::bench::run_coverage_figure(
      argc, argv, "Figure 8", ppd::bench::Method::kDelay, fault,
      ppd::core::logspace(1.2e3, 64e3, 13));
}
