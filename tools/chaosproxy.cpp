// chaosproxy — fault-injecting loopback TCP proxy for service hardening.
//
//   chaosproxy --upstream=PORT [--port=N] [--port-file=FILE]
//              [--faults=SPEC] [--stats-every=s]
//
// Sits between a client and ppdd, forwarding raw bytes while injecting
// socket faults from the sock-* seams of a seeded ppd::resil fault plan:
//
//   --upstream=PORT  where the real ppdd listens (required)
//   --port=N         listen port (0 = ephemeral, default; written to
//                    --port-file like ppdd)
//   --faults=SPEC    resil fault-plan spec, e.g.
//                    "seed=7,sock-partial=0.3,sock-reset=0.02,
//                     sock-stall=0.05:0.02,sock-delay=0.2:0.005"
//   --stats-every=s  print injection totals every s seconds (0 = only at
//                    exit)
//
// Every injection decision is a pure hash of (seed, connection, direction,
// seam, chunk) — re-running a failing seed injects the same faults at the
// same byte offsets. SIGINT/SIGTERM stop the proxy and print final totals.
#include <csignal>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "ppd/net/chaos.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/error.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

extern "C" void chaosproxy_on_signal(int sig) {
  g_signal = static_cast<std::sig_atomic_t>(sig);
}

void print_stats(const ppd::net::ChaosProxyStats& s) {
  std::cout << "chaosproxy: connections=" << s.connections
            << " forwarded_bytes=" << s.forwarded_bytes
            << " partial_writes=" << s.partial_writes
            << " resets=" << s.resets << " stalls=" << s.stalls
            << " delays=" << s.delays << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ppd::util::Cli cli(
        argc, argv,
        {"upstream", "port", "port-file", "faults", "stats-every"});

    ppd::net::ChaosProxyOptions options;
    options.upstream_port =
        static_cast<std::uint16_t>(cli.get("upstream", 0));
    if (options.upstream_port == 0)
      throw ppd::ParseError("chaosproxy needs --upstream=PORT");
    options.listen_port = static_cast<std::uint16_t>(cli.get("port", 0));
    const std::string faults = cli.get("faults", std::string());
    if (!faults.empty())
      options.plan = ppd::resil::FaultPlan::parse(faults);
    const double stats_every = cli.get("stats-every", 0.0);

    ppd::net::ChaosProxy proxy(options);
    proxy.start();

    const std::string port_file = cli.get("port-file", std::string());
    if (!port_file.empty()) {
      std::ofstream os(port_file);
      if (!os)
        throw ppd::ParseError("cannot open " + port_file + " for writing");
      os << proxy.port() << "\n";
    }
    std::cout << "chaosproxy 127.0.0.1:" << proxy.port() << " -> 127.0.0.1:"
              << options.upstream_port << " plan "
              << options.plan.describe() << std::endl;

    std::signal(SIGINT, chaosproxy_on_signal);
    std::signal(SIGTERM, chaosproxy_on_signal);
    auto last_stats = std::chrono::steady_clock::now();
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (stats_every > 0.0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration<double>(now - last_stats).count() >=
            stats_every) {
          print_stats(proxy.stats());
          last_stats = now;
        }
      }
    }
    proxy.stop();
    print_stats(proxy.stats());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "chaosproxy: " << e.what() << "\n";
    return 1;
  }
}
