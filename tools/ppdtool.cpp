// ppdtool — command-line front end to the pulse-propagation test library.
//
//   ppdtool transfer  [--gates=inv,nand2,...] [--w-lo=s] [--w-hi=s] [--points=N]
//       Print the pulse transfer function w_out(w_in) of a path.
//
//   ppdtool calibrate [--fault=KIND] [--stage=N] [--samples=N] [--sigma=F]
//       Calibrate both test methods on the paper's 7-gate path (or
//       --gates=...) and print (T0, w_in, w_th).
//
//   ppdtool coverage  [--method=pulse|delay] [--fault=KIND] [--stage=N]
//                     [--r-lo=ohm] [--r-hi=ohm] [--points=N] [--samples=N]
//                     [--strict] [--solve-budget=s] [--sweep-budget=s]
//                     [--checkpoint=FILE] [--resume=FILE]
//                     [--fault-plan=SPEC] [--quarantine-json=FILE]
//       Monte-Carlo fault-coverage sweep (Figs. 6-9 style). Runs in
//       quarantine mode by default (failing samples are recorded and
//       skipped); --strict restores fail-fast. --resume continues an
//       interrupted sweep from its checkpoint file. --fault-plan (or the
//       PPD_FAULT_PLAN env var) injects deterministic faults, e.g.
//       "seed=13,newton=0.35,nan=0.08" — see ppd/resil/faultplan.hpp.
//
//   ppdtool sta       [--bench=FILE] [--clock=s]
//       Static timing report of a .bench netlist (bundled C432-class
//       benchmark when no file is given).
//
//   ppdtool atpg      [--bench=FILE] [--r=ohm] [--slack=FRACTION]
//       Logic-level ROP fault list at slack sites + greedy pulse-test ATPG.
//
//   ppdtool export    [--gates=...] [--fault=KIND] [--stage=N] [--r=ohm]
//       Emit a runnable SPICE deck of the (optionally faulty) path for
//       cross-validation with an external simulator.
//
//   ppdtool vcd       [--bench=FILE] [--pulse-input=N] [--width=s]
//       Event-simulate a pulse through a .bench netlist and dump VCD.
//
//   ppdtool lint      <file>... [--json] [--min-severity=note|warning|error]
//                     [--suppress=PPD004,PPD007,...]
//       Static analysis of .bench netlists and SPICE decks (.sp/.cir/.spice).
//       Prints structured diagnostics (stable PPD0xx codes) as text or JSON
//       and exits non-zero when error-severity findings remain.
//
// All table-producing subcommands accept --csv for machine-readable output.
#include <fstream>
#include <iostream>
#include <string>

#include "ppd/core/coverage.hpp"
#include "ppd/core/logic_bridge.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/lint/bench_lint.hpp"
#include "ppd/lint/spice_lint.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/faultsim.hpp"
#include "ppd/logic/sta.hpp"
#include "ppd/logic/vcd.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/spice/export.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

cells::GateKind kind_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "inv")) return cells::GateKind::kInv;
  if (iequals(s, "nand2")) return cells::GateKind::kNand2;
  if (iequals(s, "nand3")) return cells::GateKind::kNand3;
  if (iequals(s, "nor2")) return cells::GateKind::kNor2;
  if (iequals(s, "nor3")) return cells::GateKind::kNor3;
  if (iequals(s, "aoi21")) return cells::GateKind::kAoi21;
  if (iequals(s, "oai21")) return cells::GateKind::kOai21;
  throw ppd::ParseError("unknown gate kind: " + s +
                   " (use inv|nand2|nand3|nor2|nor3|aoi21|oai21)");
}

faults::FaultKind fault_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "external")) return faults::FaultKind::kExternalRopOutput;
  if (iequals(s, "branch")) return faults::FaultKind::kExternalRopBranch;
  if (iequals(s, "internal-up")) return faults::FaultKind::kInternalRopPullUp;
  if (iequals(s, "internal-down"))
    return faults::FaultKind::kInternalRopPullDown;
  if (iequals(s, "bridge")) return faults::FaultKind::kBridge;
  throw ppd::ParseError("unknown fault kind: " + s +
                   " (use external|branch|internal-up|internal-down|bridge)");
}

std::vector<cells::GateKind> gates_from_cli(const util::Cli& cli) {
  const std::string spec = cli.get("gates", std::string());
  if (spec.empty()) return cells::seven_gate_path().kinds;
  std::vector<cells::GateKind> kinds;
  for (const auto& tok : util::split(spec, ','))
    kinds.push_back(kind_from_string(std::string(util::trim(tok))));
  return kinds;
}

logic::Netlist netlist_from_cli(const util::Cli& cli) {
  const std::string file = cli.get("bench", std::string());
  if (file.empty()) return logic::synthetic_benchmark(logic::SyntheticOptions{});
  return logic::load_bench_file(file);
}

void emit(const util::Table& t, bool csv) {
  if (csv)
    std::cout << t.to_csv();
  else
    t.print(std::cout);
}

int cmd_transfer(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"gates", "w-lo", "w-hi", "points", "csv"});
  core::PathFactory f;
  f.options.kinds = gates_from_cli(cli);
  const auto grid = core::linspace(cli.get("w-lo", 0.08e-9),
                                   cli.get("w-hi", 0.8e-9),
                                   static_cast<std::size_t>(cli.get("points", 15)));
  core::PathInstance inst = core::make_instance(f, 0.0, nullptr);
  const auto curve =
      core::transfer_function(inst.path, core::PulseKind::kH, grid, {});
  util::Table t({"w_in_s", "w_out_s"});
  for (std::size_t i = 0; i < curve.w_in.size(); ++i)
    t.add_numeric_row({curve.w_in[i], curve.w_out[i]}, 5);
  emit(t, cli.has("csv"));
  return 0;
}

int cmd_calibrate(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"gates", "fault", "stage", "samples", "sigma", "seed", "csv"});
  core::PathFactory f;
  f.options.kinds = gates_from_cli(cli);
  faults::PathFaultSpec spec;
  spec.kind = fault_from_string(cli.get("fault", std::string("external")));
  spec.stage = static_cast<std::size_t>(cli.get("stage", 1));
  f.fault = spec;

  const int samples = cli.get("samples", 30);
  const auto model = mc::VariationModel::uniform_sigma(cli.get("sigma", 0.05));
  const auto seed = static_cast<std::uint64_t>(cli.get("seed", 2007));

  core::DelayCalibrationOptions dopt;
  dopt.samples = samples;
  dopt.seed = seed;
  dopt.variation = model;
  const auto dcal = core::calibrate_delay_test(f, dopt);
  core::PulseCalibrationOptions popt;
  popt.samples = samples;
  popt.seed = seed;
  popt.variation = model;
  const auto pcal = core::calibrate_pulse_test(f, popt);

  util::Table t({"parameter", "value_s"});
  t.add_row({"delay_T0", util::format_double(dcal.t_nominal, 6)});
  t.add_row({"worst_fault_free_delay",
             util::format_double(dcal.worst_fault_free_delay, 6)});
  t.add_row({"pulse_w_in", util::format_double(pcal.w_in, 6)});
  t.add_row({"pulse_w_th", util::format_double(pcal.w_th, 6)});
  t.add_row({"min_fault_free_w_out",
             util::format_double(pcal.min_fault_free_w_out, 6)});
  emit(t, cli.has("csv"));
  return 0;
}

int cmd_coverage(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"gates", "fault", "stage", "method", "samples", "sigma",
                       "seed", "r-lo", "r-hi", "points", "csv", "strict",
                       "solve-budget", "sweep-budget", "checkpoint", "resume",
                       "fault-plan", "quarantine-json"});
  core::PathFactory f;
  f.options.kinds = gates_from_cli(cli);
  faults::PathFaultSpec spec;
  spec.kind = fault_from_string(cli.get("fault", std::string("external")));
  spec.stage = static_cast<std::size_t>(cli.get("stage", 1));
  f.fault = spec;

  core::CoverageOptions copt;
  copt.samples = cli.get("samples", 25);
  copt.seed = static_cast<std::uint64_t>(cli.get("seed", 2007));
  copt.variation = mc::VariationModel::uniform_sigma(cli.get("sigma", 0.05));
  copt.resistances = core::logspace(cli.get("r-lo", 1e3), cli.get("r-hi", 64e3),
                                    static_cast<std::size_t>(cli.get("points", 9)));

  // The CLI defaults to quarantine mode — a long sweep should report its
  // broken samples, not die on one of them; --strict restores the library's
  // fail-fast default.
  copt.resil.quarantine = !cli.has("strict");
  copt.resil.solve_budget_seconds = cli.get("solve-budget", 0.0);
  copt.resil.sweep_budget_seconds = cli.get("sweep-budget", 0.0);
  copt.resil.checkpoint_path = cli.get("checkpoint", std::string());
  const std::string resume = cli.get("resume", std::string());
  if (!resume.empty()) {
    copt.resil.checkpoint_path = resume;
    copt.resil.resume = true;
  }
  const std::string plan = cli.get("fault-plan", std::string());
  copt.resil.faults = plan.empty() ? resil::FaultPlan::from_env()
                                   : resil::FaultPlan::parse(plan);

  const std::string method = cli.get("method", std::string("pulse"));
  core::CoverageResult res;
  if (util::iequals(method, "delay")) {
    core::DelayCalibrationOptions dopt;
    dopt.samples = copt.samples;
    dopt.seed = copt.seed;
    dopt.variation = copt.variation;
    res = core::run_delay_coverage(f, core::calibrate_delay_test(f, dopt), copt);
  } else if (util::iequals(method, "pulse")) {
    core::PulseCalibrationOptions popt;
    popt.samples = copt.samples;
    popt.seed = copt.seed;
    popt.variation = copt.variation;
    res = core::run_pulse_coverage(f, core::calibrate_pulse_test(f, popt), copt);
  } else {
    throw ppd::ParseError("unknown method: " + method + " (use pulse|delay)");
  }

  util::Table t({"R_ohm", "x0.9", "x1.0", "x1.1"});
  for (std::size_t r = 0; r < res.resistances.size(); ++r)
    t.add_numeric_row({res.resistances[r], res.coverage[0][r],
                       res.coverage[1][r], res.coverage[2][r]},
                      4);
  emit(t, cli.has("csv"));
  std::cout << "# " << res.simulations << " electrical transients\n";
  if (copt.resil.quarantine)
    std::cout << "# n_quarantined = " << res.n_quarantined() << " of "
              << res.quarantine.items << " samples\n";
  const std::string qjson = cli.get("quarantine-json", std::string());
  if (!qjson.empty()) {
    std::ofstream os(qjson);
    if (!os) throw ppd::ParseError("cannot open " + qjson + " for writing");
    res.quarantine.write_json(os);
  }
  return 0;
}

int cmd_sta(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"bench", "clock", "csv"});
  const logic::Netlist nl = netlist_from_cli(cli);
  const auto lib = logic::GateTimingLibrary::generic();
  const auto sta = logic::run_sta(nl, lib, cli.get("clock", 0.0));
  std::cout << "# " << nl.gate_count() << " gates, depth " << nl.depth()
            << ", critical delay "
            << util::format_double(sta.critical_delay, 5) << " s, clock "
            << util::format_double(sta.clock_period, 5) << " s\n";
  const auto crit = logic::critical_path(nl, sta, lib);
  std::cout << "# critical path:";
  for (logic::NetId n : crit.nets) std::cout << ' ' << nl.gate(n).name;
  std::cout << "\n";
  util::Table t({"slack_at_least_frac", "gates"});
  for (double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5})
    t.add_row({util::format_double(frac, 3),
               std::to_string(
                   logic::slack_sites(nl, sta, frac * sta.clock_period).size())});
  emit(t, cli.has("csv"));
  return 0;
}

int cmd_atpg(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"bench", "r", "slack", "paths", "csv"});
  const logic::Netlist nl = netlist_from_cli(cli);
  const auto lib = logic::GateTimingLibrary::generic();
  const auto sta = logic::run_sta(nl, lib);
  const double frac = cli.get("slack", 0.2);
  const auto sites = logic::slack_sites(nl, sta, frac * sta.critical_delay);
  const auto faults = logic::enumerate_rop_faults(sites, cli.get("r", 10e3));
  const logic::FaultSimulator sim(nl, lib);
  logic::AtpgOptions aopt;
  aopt.paths_per_site = static_cast<std::size_t>(cli.get("paths", 32));
  const auto res = logic::generate_pulse_tests(sim, faults, aopt);
  std::cout << "# " << sites.size() << " slack sites (slack >= "
            << util::format_double(frac, 3) << " x Tcrit), "
            << res.faults_total << " ROP faults\n"
            << "# coverage "
            << util::format_double(res.coverage.coverage(res.faults_total), 4)
            << " with " << res.tests.size() << " tests; " << res.aborted
            << " faults without a sensitizable path\n";
  util::Table t({"test", "path", "pulse", "w_in_s", "w_th_s"});
  for (std::size_t i = 0; i < res.tests.size(); ++i) {
    const auto& test = res.tests[i];
    std::string pstr;
    for (logic::NetId n : test.path.nets) {
      if (!pstr.empty()) pstr += '>';
      pstr += nl.gate(n).name;
    }
    t.add_row({std::to_string(i), pstr, test.positive_pulse ? "h" : "l",
               util::format_double(test.w_in, 4),
               util::format_double(test.w_th, 4)});
  }
  emit(t, cli.has("csv"));
  return 0;
}

int cmd_export(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"gates", "fault", "stage", "r", "width"});
  core::PathFactory f;
  f.options.kinds = gates_from_cli(cli);
  const double r = cli.get("r", 0.0);
  if (r > 0.0) {
    faults::PathFaultSpec spec;
    spec.kind = fault_from_string(cli.get("fault", std::string("external")));
    spec.stage = static_cast<std::size_t>(cli.get("stage", 1));
    f.fault = spec;
  }
  core::PathInstance inst = core::make_instance(f, r, nullptr);
  inst.path.drive_pulse(true, cli.get("width", 0.35e-9), 0.3e-9);
  spice::SpiceExportOptions o;
  o.title = "ppd path export (fault R = " + util::format_double(r, 4) + " ohm)";
  o.tran_step = 1e-12;
  o.tran_stop = 4e-9;
  spice::write_spice(std::cout, inst.path.netlist().circuit(), o);
  return 0;
}

int cmd_vcd(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"bench", "pulse-input", "width"});
  const logic::Netlist nl = netlist_from_cli(cli);
  const auto idx = static_cast<std::size_t>(cli.get("pulse-input", 0));
  if (idx >= nl.inputs().size())
    throw ppd::ParseError("--pulse-input out of range");
  std::vector<logic::Stimulus> stim(nl.inputs().size());
  stim[idx] = logic::Stimulus::pulse(false, 1e-9, cli.get("width", 0.4e-9));
  const auto res = logic::simulate(nl, stim);
  logic::write_vcd(std::cout, nl, res);
  return 0;
}

bool has_ext(const std::string& path, const char* ext) {
  const auto dot = path.rfind('.');
  return dot != std::string::npos &&
         util::iequals(std::string_view(path).substr(dot), ext);
}

// `lint <file>...` takes positional arguments, which util::Cli (strictly
// --key=value) does not model — parse argv by hand.
int cmd_lint(int argc, char** argv) {
  std::vector<std::string> files;
  bool json = false;
  lint::LintOptions filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (util::starts_with(arg, "--min-severity=")) {
      filter.min_severity = lint::severity_from_string(
          arg.substr(std::string("--min-severity=").size()));
    } else if (util::starts_with(arg, "--suppress=")) {
      for (const auto& code :
           util::split(arg.substr(std::string("--suppress=").size()), ','))
        filter.suppress.emplace_back(util::trim(code));
    } else if (util::starts_with(arg, "--")) {
      throw ppd::ParseError("unknown lint flag: " + arg);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty())
    throw ppd::ParseError("lint needs at least one file "
                          "(.bench netlist or .sp/.cir/.spice deck)");

  lint::Report report;
  for (const std::string& file : files) {
    if (has_ext(file, ".bench"))
      report.merge(lint::lint_bench_file(file));
    else if (has_ext(file, ".sp") || has_ext(file, ".cir") ||
             has_ext(file, ".spice"))
      report.merge(lint::lint_spice_deck_file(file));
    else
      throw ppd::ParseError("cannot infer input language of '" + file +
                            "' (expected .bench or .sp/.cir/.spice)");
  }
  const lint::Report shown = report.filtered(filter);
  if (json)
    lint::write_json(std::cout, shown);
  else
    lint::write_text(std::cout, shown);
  return shown.has_errors() ? 1 : 0;
}

int usage() {
  std::cerr << "usage: ppdtool "
               "<transfer|calibrate|coverage|sta|atpg|export|vcd|lint> "
               "[--options]\n(see the header of tools/ppdtool.cpp)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // The obs flags (--metrics=, --trace=, --log-level=, --log-json=) are
  // global: strip them here so the strict per-subcommand parsers never see
  // them, and let ScopedRun write the sinks on every exit path below.
  ppd::obs::ScopedRun run(ppd::obs::extract_run_options(argc, argv));
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "transfer") return cmd_transfer(argc - 1, argv + 1);
    if (cmd == "calibrate") return cmd_calibrate(argc - 1, argv + 1);
    if (cmd == "coverage") return cmd_coverage(argc - 1, argv + 1);
    if (cmd == "sta") return cmd_sta(argc - 1, argv + 1);
    if (cmd == "atpg") return cmd_atpg(argc - 1, argv + 1);
    if (cmd == "export") return cmd_export(argc - 1, argv + 1);
    if (cmd == "vcd") return cmd_vcd(argc - 1, argv + 1);
    if (cmd == "lint") return cmd_lint(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << "ppdtool: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
