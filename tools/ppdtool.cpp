// ppdtool — command-line front end to the pulse-propagation test library.
//
//   ppdtool transfer  [--gates=inv,nand2,...] [--w-lo=s] [--w-hi=s] [--points=N]
//       Print the pulse transfer function w_out(w_in) of a path.
//
//   ppdtool calibrate [--fault=KIND] [--stage=N] [--samples=N] [--sigma=F]
//       Calibrate both test methods on the paper's 7-gate path (or
//       --gates=...) and print (T0, w_in, w_th).
//
//   ppdtool coverage  [--method=pulse|delay] [--fault=KIND] [--stage=N]
//                     [--r-lo=ohm] [--r-hi=ohm] [--points=N] [--samples=N]
//                     [--strict] [--solve-budget=s] [--sweep-budget=s]
//                     [--checkpoint=FILE] [--resume=FILE] [--threads=N]
//                     [--batch] [--fault-plan=SPEC] [--quarantine-json=FILE]
//       Monte-Carlo fault-coverage sweep (Figs. 6-9 style). Runs in
//       quarantine mode by default (failing samples are recorded and
//       skipped); --strict restores fail-fast. --resume continues an
//       interrupted sweep from its checkpoint file. --batch routes the
//       electrical work through the factor-once/solve-many kernel
//       (bit-identical results, much higher MC throughput). --fault-plan
//       (or the PPD_FAULT_PLAN env var) injects deterministic faults, e.g.
//       "seed=13,newton=0.35,nan=0.08" — see ppd/resil/faultplan.hpp.
//       SIGINT/SIGTERM cancel the sweep cleanly: the checkpoint (if
//       configured) is flushed and the exit code is 128+signal.
//
//   ppdtool rmin      [--fault=KIND] [--stage=N] [--samples=N] [--sigma=F]
//                     [--r-lo=ohm] [--r-hi=ohm] [--steps=N]
//                     [--target-coverage=F] [--threads=N] [--batch]
//       Bisect the minimum detectable fault resistance R_min of the pulse
//       test (Fig. 10 style). Same signal semantics as coverage.
//
//   ppdtool sta       [--bench=FILE] [--clock=s] [--k=N] [--w-in-max=s]
//                     [--w-th-floor=s] [--margin=F] [--slack-frac=F]
//                     [--suppress=PPD301,...] [--json]
//       Static path-screening report of a .bench netlist (bundled
//       C432-class benchmark when no file is given): four-value interval
//       STA, the K slackiest paths (branch-and-bound), static
//       pulse-survival site counts, and the PPD3xx testability lint
//       family. --json emits the whole report as one JSON object.
//
//   ppdtool atpg      [--bench=FILE] [--r=ohm] [--slack=FRACTION]
//       Logic-level ROP fault list at slack sites + greedy pulse-test ATPG.
//
//   ppdtool export    [--gates=...] [--fault=KIND] [--stage=N] [--r=ohm]
//       Emit a runnable SPICE deck of the (optionally faulty) path for
//       cross-validation with an external simulator.
//
//   ppdtool vcd       [--bench=FILE] [--pulse-input=N] [--width=s]
//       Event-simulate a pulse through a .bench netlist and dump VCD.
//
//   ppdtool lint      <file>... [--json] [--min-severity=note|warning|error]
//                     [--suppress=PPD004,PPD007,...]
//       Static analysis of .bench netlists and SPICE decks (.sp/.cir/.spice).
//       Prints structured diagnostics (stable PPD0xx codes) as text or JSON
//       and exits non-zero when error-severity findings remain.
//
// The query subcommands (transfer, calibrate, coverage, rmin, lint) are thin
// wrappers over ppd::net's query layer — the same code path the ppdd service
// executes, so served results are byte-identical to this tool's stdout.
//
// All table-producing subcommands accept --csv for machine-readable output.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "ppd/core/coverage.hpp"
#include "ppd/core/logic_bridge.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/lint/bench_lint.hpp"
#include "ppd/lint/spice_lint.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/faultsim.hpp"
#include "ppd/logic/sta.hpp"
#include "ppd/logic/vcd.hpp"
#include "ppd/net/query.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/spice/export.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"
#include "ppd/util/table.hpp"

namespace {

using namespace ppd;

cells::GateKind kind_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "inv")) return cells::GateKind::kInv;
  if (iequals(s, "nand2")) return cells::GateKind::kNand2;
  if (iequals(s, "nand3")) return cells::GateKind::kNand3;
  if (iequals(s, "nor2")) return cells::GateKind::kNor2;
  if (iequals(s, "nor3")) return cells::GateKind::kNor3;
  if (iequals(s, "aoi21")) return cells::GateKind::kAoi21;
  if (iequals(s, "oai21")) return cells::GateKind::kOai21;
  throw ppd::ParseError("unknown gate kind: " + s +
                   " (use inv|nand2|nand3|nor2|nor3|aoi21|oai21)");
}

faults::FaultKind fault_from_string(const std::string& s) {
  using util::iequals;
  if (iequals(s, "external")) return faults::FaultKind::kExternalRopOutput;
  if (iequals(s, "branch")) return faults::FaultKind::kExternalRopBranch;
  if (iequals(s, "internal-up")) return faults::FaultKind::kInternalRopPullUp;
  if (iequals(s, "internal-down"))
    return faults::FaultKind::kInternalRopPullDown;
  if (iequals(s, "bridge")) return faults::FaultKind::kBridge;
  throw ppd::ParseError("unknown fault kind: " + s +
                   " (use external|branch|internal-up|internal-down|bridge)");
}

std::vector<cells::GateKind> gates_from_cli(const util::Cli& cli) {
  const std::string spec = cli.get("gates", std::string());
  if (spec.empty()) return cells::seven_gate_path().kinds;
  std::vector<cells::GateKind> kinds;
  for (const auto& tok : util::split(spec, ','))
    kinds.push_back(kind_from_string(std::string(util::trim(tok))));
  return kinds;
}

logic::Netlist netlist_from_cli(const util::Cli& cli) {
  const std::string file = cli.get("bench", std::string());
  if (file.empty()) return logic::synthetic_benchmark(logic::SyntheticOptions{});
  return logic::load_bench_file(file);
}

void emit(const util::Table& t, bool csv) {
  if (csv)
    std::cout << t.to_csv();
  else
    t.print(std::cout);
}

// ---------------------------------------------------------------------------
// Signal-aware sweep cancellation (coverage / rmin).
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_signal = 0;

extern "C" void ppdtool_on_signal(int sig) {
  g_signal = static_cast<std::sig_atomic_t>(sig);
}

/// While alive, SIGINT/SIGTERM fire the sweep's CancelToken instead of
/// killing the process: the cancellation unwinds through ppd::resil's
/// SweepGuard, which flushes the checkpoint before the error escapes, and
/// the caller exits with 128+signal so scripts can tell an interrupted
/// sweep from a failed one.
class SignalGuard {
 public:
  explicit SignalGuard(exec::CancelToken token) : token_(std::move(token)) {
    g_signal = 0;
    prev_int_ = std::signal(SIGINT, ppdtool_on_signal);
    prev_term_ = std::signal(SIGTERM, ppdtool_on_signal);
    // std::signal handlers may only touch the sig_atomic_t flag; a watcher
    // thread turns the flag into a CancelToken fire.
    watcher_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        if (g_signal != 0) {
          token_.cancel();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  ~SignalGuard() {
    stop_.store(true, std::memory_order_relaxed);
    watcher_.join();
    std::signal(SIGINT, prev_int_);
    std::signal(SIGTERM, prev_term_);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  [[nodiscard]] int signal_number() const { return static_cast<int>(g_signal); }

 private:
  exec::CancelToken token_;
  std::atomic<bool> stop_{false};
  std::thread watcher_;
  void (*prev_int_)(int) = nullptr;
  void (*prev_term_)(int) = nullptr;
};

// ---------------------------------------------------------------------------
// Query subcommands: parse flags through the shared net::query key tables
// and execute through the same run_query the ppdd service calls.
// ---------------------------------------------------------------------------

int cmd_query(net::QueryKind kind, int argc, char** argv,
              bool signal_aware) {
  const util::Cli cli(argc, argv, net::query_keys(kind));
  const net::QueryParams params = net::params_from_cli(kind, cli);
  if (!signal_aware) {
    const net::QueryResult res = net::run_query(kind, params);
    std::cout << res.body;
    return res.exit_code;
  }
  SignalGuard guard(params.cancel);
  try {
    const net::QueryResult res = net::run_query(kind, params);
    std::cout << res.body;
    return res.exit_code;
  } catch (const exec::CancelledError&) {
    const int sig = guard.signal_number();
    if (sig == 0) throw;  // not ours (e.g. an injected cancel-after fault)
    std::cerr << "ppdtool: interrupted by signal " << sig;
    if (!params.checkpoint.empty())
      std::cerr << " (checkpoint saved: " << params.checkpoint << ")";
    std::cerr << "\n";
    return 128 + sig;
  }
}

int cmd_atpg(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"bench", "r", "slack", "paths", "csv"});
  const logic::Netlist nl = netlist_from_cli(cli);
  const auto lib = logic::GateTimingLibrary::generic();
  const auto sta = logic::run_sta(nl, lib);
  const double frac = cli.get("slack", 0.2);
  const auto sites = logic::slack_sites(nl, sta, frac * sta.critical_delay);
  const auto faults = logic::enumerate_rop_faults(sites, cli.get("r", 10e3));
  const logic::FaultSimulator sim(nl, lib);
  logic::AtpgOptions aopt;
  aopt.paths_per_site = static_cast<std::size_t>(cli.get("paths", 32));
  const auto res = logic::generate_pulse_tests(sim, faults, aopt);
  std::cout << "# " << sites.size() << " slack sites (slack >= "
            << util::format_double(frac, 3) << " x Tcrit), "
            << res.faults_total << " ROP faults\n"
            << "# coverage "
            << util::format_double(res.coverage.coverage(res.faults_total), 4)
            << " with " << res.tests.size() << " tests; " << res.aborted
            << " faults without a sensitizable path\n";
  util::Table t({"test", "path", "pulse", "w_in_s", "w_th_s"});
  for (std::size_t i = 0; i < res.tests.size(); ++i) {
    const auto& test = res.tests[i];
    std::string pstr;
    for (logic::NetId n : test.path.nets) {
      if (!pstr.empty()) pstr += '>';
      pstr += nl.gate(n).name;
    }
    t.add_row({std::to_string(i), pstr, test.positive_pulse ? "h" : "l",
               util::format_double(test.w_in, 4),
               util::format_double(test.w_th, 4)});
  }
  emit(t, cli.has("csv"));
  return 0;
}

int cmd_export(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"gates", "fault", "stage", "r", "width"});
  core::PathFactory f;
  f.options.kinds = gates_from_cli(cli);
  const double r = cli.get("r", 0.0);
  if (r > 0.0) {
    faults::PathFaultSpec spec;
    spec.kind = fault_from_string(cli.get("fault", std::string("external")));
    spec.stage = static_cast<std::size_t>(cli.get("stage", 1));
    f.fault = spec;
  }
  core::PathInstance inst = core::make_instance(f, r, nullptr);
  inst.path.drive_pulse(true, cli.get("width", 0.35e-9), 0.3e-9);
  spice::SpiceExportOptions o;
  o.title = "ppd path export (fault R = " + util::format_double(r, 4) + " ohm)";
  o.tran_step = 1e-12;
  o.tran_stop = 4e-9;
  spice::write_spice(std::cout, inst.path.netlist().circuit(), o);
  return 0;
}

int cmd_vcd(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"bench", "pulse-input", "width"});
  const logic::Netlist nl = netlist_from_cli(cli);
  const auto idx = static_cast<std::size_t>(cli.get("pulse-input", 0));
  if (idx >= nl.inputs().size())
    throw ppd::ParseError("--pulse-input out of range");
  std::vector<logic::Stimulus> stim(nl.inputs().size());
  stim[idx] = logic::Stimulus::pulse(false, 1e-9, cli.get("width", 0.4e-9));
  const auto res = logic::simulate(nl, stim);
  logic::write_vcd(std::cout, nl, res);
  return 0;
}

bool has_ext(const std::string& path, const char* ext) {
  const auto dot = path.rfind('.');
  return dot != std::string::npos &&
         util::iequals(std::string_view(path).substr(dot), ext);
}

// `lint <file>...` takes positional arguments, which util::Cli (strictly
// --key=value) does not model — parse argv by hand.
int cmd_lint(int argc, char** argv) {
  std::vector<std::string> files;
  bool json = false;
  lint::LintOptions filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (util::starts_with(arg, "--min-severity=")) {
      filter.min_severity = lint::severity_from_string(
          arg.substr(std::string("--min-severity=").size()));
    } else if (util::starts_with(arg, "--suppress=")) {
      // Unknown/malformed codes are hard errors, not silently dead filters.
      for (auto& code : lint::parse_suppress_list(
               arg.substr(std::string("--suppress=").size())))
        filter.suppress.push_back(std::move(code));
    } else if (util::starts_with(arg, "--")) {
      throw ppd::ParseError("unknown lint flag: " + arg);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty())
    throw ppd::ParseError("lint needs at least one file "
                          "(.bench netlist or .sp/.cir/.spice deck)");

  lint::Report report;
  for (const std::string& file : files) {
    if (has_ext(file, ".bench"))
      report.merge(lint::lint_bench_file(file));
    else if (has_ext(file, ".sp") || has_ext(file, ".cir") ||
             has_ext(file, ".spice"))
      report.merge(lint::lint_spice_deck_file(file));
    else
      throw ppd::ParseError("cannot infer input language of '" + file +
                            "' (expected .bench or .sp/.cir/.spice)");
  }
  const lint::Report shown = report.filtered(filter);
  if (json)
    lint::write_json(std::cout, shown);
  else
    lint::write_text(std::cout, shown);
  return shown.has_errors() ? 1 : 0;
}

int usage() {
  std::cerr << "usage: ppdtool "
               "<transfer|calibrate|coverage|rmin|sta|atpg|export|vcd|lint> "
               "[--options]\n"
               "(see the header of tools/ppdtool.cpp; ppdd serves the same "
               "queries over a socket)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // The obs flags (--metrics=, --trace=, --log-level=, --log-json=) are
  // global: strip them here so the strict per-subcommand parsers never see
  // them, and let ScopedRun write the sinks on every exit path below.
  ppd::obs::ScopedRun run(ppd::obs::extract_run_options(argc, argv));
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "transfer")
      return cmd_query(net::QueryKind::kTransfer, argc - 1, argv + 1, false);
    if (cmd == "calibrate")
      return cmd_query(net::QueryKind::kCalibrate, argc - 1, argv + 1, false);
    if (cmd == "coverage")
      return cmd_query(net::QueryKind::kCoverage, argc - 1, argv + 1, true);
    if (cmd == "rmin")
      return cmd_query(net::QueryKind::kRmin, argc - 1, argv + 1, true);
    if (cmd == "sta")
      return cmd_query(net::QueryKind::kSta, argc - 1, argv + 1, false);
    if (cmd == "atpg") return cmd_atpg(argc - 1, argv + 1);
    if (cmd == "export") return cmd_export(argc - 1, argv + 1);
    if (cmd == "vcd") return cmd_vcd(argc - 1, argv + 1);
    if (cmd == "lint") return cmd_lint(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << "ppdtool: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
