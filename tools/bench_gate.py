#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON streams.

Compares a bench's JSON-lines output (bench_perf_engine,
bench_service_load) against a committed baseline file with per-row rules
and exits non-zero on any regression, so CI can gate merges on measured
performance instead of hope.

Usage:
    bench_gate.py --baseline bench/baseline/service_load.json results.jsonl
    some_bench | bench_gate.py --baseline bench/baseline/perf_engine.json -
    bench_gate.py --self-test

Input: one JSON object per line (non-JSON lines are ignored, so the raw
bench stdout can be piped in directly).

Baseline schema:
    {
      "bench": "service_load",
      "rules": [
        {
          "name": "warm pass byte-identity",
          "match":     {"section": "service_load", "pass": "warm"},
          "require":   {"identical": true},          # exact equality
          "min":       {"throughput_qps": 10.0},     # row >= bound
          "max":       {"p99_ms": 500.0},            # row <= bound
          "tolerance": {"p50_ms": {"baseline": 2.0, "max_ratio": 5.0}},
                       # row <= baseline * max_ratio
          "optional":  false                         # missing row fails
        }
      ]
    }

Every row matching `match` is checked against the rule; a non-optional
rule that matches no row fails (a silently vanished section must not pass
the gate). Exit code: 0 all rules pass, 1 any failure, 2 usage error.
"""

import json
import sys


def load_rows(stream):
    rows = []
    for line in stream:
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return rows


def matches(row, match):
    return all(row.get(key) == value for key, value in match.items())


def check_rule(rule, rows):
    """Returns a list of failure strings (empty = rule passed)."""
    name = rule.get("name", json.dumps(rule.get("match", {})))
    hits = [row for row in rows if matches(row, rule.get("match", {}))]
    if not hits:
        if rule.get("optional", False):
            return []
        return ["%s: no row matched %s" % (name, json.dumps(rule.get("match", {})))]

    failures = []
    for row in hits:
        for key, want in rule.get("require", {}).items():
            got = row.get(key)
            if got != want:
                failures.append("%s: %s == %r, want %r" % (name, key, got, want))
        for key, bound in rule.get("min", {}).items():
            got = row.get(key)
            if not isinstance(got, (int, float)) or got < bound:
                failures.append("%s: %s = %r, want >= %r" % (name, key, got, bound))
        for key, bound in rule.get("max", {}).items():
            got = row.get(key)
            if not isinstance(got, (int, float)) or got > bound:
                failures.append("%s: %s = %r, want <= %r" % (name, key, got, bound))
        for key, tol in rule.get("tolerance", {}).items():
            got = row.get(key)
            limit = tol["baseline"] * tol["max_ratio"]
            if not isinstance(got, (int, float)) or got > limit:
                failures.append(
                    "%s: %s = %r, want <= %g (baseline %g x %g)"
                    % (name, key, got, limit, tol["baseline"], tol["max_ratio"])
                )
    return failures


def run_gate(baseline, rows):
    """Returns (passed, report_lines)."""
    report = []
    passed = True
    for rule in baseline.get("rules", []):
        name = rule.get("name", json.dumps(rule.get("match", {})))
        failures = check_rule(rule, rows)
        if failures:
            passed = False
            for failure in failures:
                report.append("FAIL %s" % failure)
        else:
            report.append("PASS %s" % name)
    return passed, report


def self_test():
    baseline = {
        "bench": "synthetic",
        "rules": [
            {
                "name": "identity",
                "match": {"section": "load", "pass": "warm"},
                "require": {"identical": True},
            },
            {
                "name": "latency",
                "match": {"section": "load", "pass": "warm"},
                "tolerance": {"p50_ms": {"baseline": 2.0, "max_ratio": 5.0}},
                "min": {"qps": 10.0},
            },
            {
                "name": "must exist",
                "match": {"section": "gone"},
            },
            {
                "name": "may be absent",
                "match": {"section": "also_gone"},
                "optional": True,
            },
        ],
    }
    good = [{"section": "load", "pass": "warm", "identical": True,
             "p50_ms": 3.0, "qps": 50.0},
            {"section": "gone"}]
    bad = [{"section": "load", "pass": "warm", "identical": False,
            "p50_ms": 30.0, "qps": 5.0}]

    ok, report = run_gate(baseline, good)
    assert ok, report
    assert sum(1 for line in report if line.startswith("PASS")) == 4, report

    ok, report = run_gate(baseline, bad)
    assert not ok, report
    fails = [line for line in report if line.startswith("FAIL")]
    # identical mismatch, p50 over tolerance, qps under min, missing section.
    assert len(fails) == 4, report

    # Non-JSON chatter and malformed lines are skipped, not fatal.
    rows = load_rows(["not json", "{broken", '{"section": "gone"}'])
    assert rows == [{"section": "gone"}]

    print("bench_gate self-test: OK")
    return 0


def main(argv):
    baseline_path = None
    input_path = None
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--self-test":
            return self_test()
        if arg == "--baseline":
            if not args:
                print("bench_gate: --baseline needs a file", file=sys.stderr)
                return 2
            baseline_path = args.pop(0)
        elif arg.startswith("--baseline="):
            baseline_path = arg.split("=", 1)[1]
        elif input_path is None:
            input_path = arg
        else:
            print("bench_gate: unexpected argument %r" % arg, file=sys.stderr)
            return 2

    if baseline_path is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(baseline_path) as handle:
        baseline = json.load(handle)

    if input_path is None or input_path == "-":
        rows = load_rows(sys.stdin)
    else:
        with open(input_path) as handle:
            rows = load_rows(handle)

    passed, report = run_gate(baseline, rows)
    for line in report:
        print(line)
    label = baseline.get("bench", baseline_path)
    print("bench_gate: %s %s" % (label, "PASS" if passed else "FAIL"))
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
