// ppdd — the persistent pulse-test service.
//
//   ppdd [--port=N] [--port-file=FILE] [--max-queue=N] [--drain-grace=s]
//        [--slow-query=s] [--trace-ring=N]
//        [--max-upload-bytes=N] [--max-uploads=N] [--max-line=N]
//        [--max-backlog=N] [--max-inflight=N] [--shed-watermark=N]
//        [--journal=FILE] [--recover]
//        [--metrics=F] [--metrics-format=json|text] [--trace=F]
//        [--log-level=L] [--log-json=F]
//
// Serves the same transfer / calibrate / coverage / rmin / lint queries as
// ppdtool over a loopback socket (protocol: ppd/net/protocol.hpp), with
// per-connection sessions, per-session backpressure, one process-wide
// exec pool batching queries from every client, and one shared solve cache
// warm-started across clients.
//
//   --port=N        control port (0 = ephemeral; default 7207)
//   --port-file=F   write the bound port to F (for scripts using --port=0)
//   --max-queue=N   per-session in-flight window before BUSY (default 8)
//   --drain-grace=s how long SIGTERM waits for in-flight queries before
//                   cancelling them (default 30; cancelled sweeps flush
//                   their resil checkpoints)
//   --slow-query=s  log a rate-limited warning for queries slower than
//                   this (queue + execute; default 1.0, 0 disables)
//   --trace-ring=N  keep a sliding window of ~N trace events per thread so
//                   `ppdctl trace` can dump recent served-query spans from
//                   a long-running daemon (default 8192, 0 disables)
//
// Hardening knobs (PR 9) — every per-session resource is capped, overload
// is shed deterministically, and sessions are crash-recoverable:
//
//   --max-upload-bytes=N  per-session upload budget (default 4 MiB);
//                         over-budget uploads answer ERR quota.upload_bytes
//   --max-uploads=N       per-session blob count cap (default 64)
//   --max-line=N          CONTROL line length cap in bytes (default 64 KiB;
//                         longer lines answer ERR quota.line)
//   --max-backlog=N       undelivered result events buffered per session
//                         before QUERY answers BUSY backlog (default 8)
//   --max-inflight=N      process-wide in-flight query ceiling (default 64,
//                         0 = unlimited); at the ceiling: BUSY server
//   --shed-watermark=N    in-flight jobs at which load shedding starts
//                         refusing low-priority kinds (coverage/rmin first,
//                         then calibrate); 0 = half the ceiling
//   --journal=FILE        append-only session journal: SET/UPLOAD/accepted
//                         qids/delivered results survive a crash
//   --recover             replay --journal on start and rebuild its
//                         sessions (detached; clients reconnect via RESUME)
//
// The standard obs flags (--metrics= etc., shared with every other binary)
// are honoured too; the metrics snapshot and Chrome trace are flushed when
// the SIGTERM drain completes, so a supervised daemon leaves its telemetry
// behind on shutdown.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, every data
// channel gets a {"event":"drain"} push, in-flight queries get the grace
// budget to finish, stragglers are cancelled, and ppdd exits 0.
#include <csignal>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "ppd/exec/thread_pool.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/net/server.hpp"
#include "ppd/obs/log.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/error.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

extern "C" void ppdd_on_signal(int sig) {
  g_signal = static_cast<std::sig_atomic_t>(sig);
}

}  // namespace

int main(int argc, char** argv) {
  ppd::obs::ScopedRun run(ppd::obs::extract_run_options(argc, argv));
  try {
    // No subcommand word: Cli skips argv[0] itself.
    const ppd::util::Cli cli(
        argc, argv,
        {"port", "port-file", "max-queue", "drain-grace", "slow-query",
         "trace-ring", "max-upload-bytes", "max-uploads", "max-line",
         "max-backlog", "max-inflight", "shed-watermark", "journal",
         "recover"});

    ppd::net::ServerOptions options;
    options.port = static_cast<std::uint16_t>(
        cli.get("port", static_cast<int>(ppd::net::kDefaultPort)));
    options.limits.max_queue =
        static_cast<std::size_t>(cli.get("max-queue", 8));
    options.drain_grace_seconds = cli.get("drain-grace", 30.0);
    options.slow_query_seconds = cli.get("slow-query", 1.0);
    options.limits.max_upload_bytes = static_cast<std::size_t>(
        cli.get("max-upload-bytes", static_cast<int>(4 << 20)));
    options.limits.max_uploads =
        static_cast<std::size_t>(cli.get("max-uploads", 64));
    options.limits.max_line_bytes = static_cast<std::size_t>(
        cli.get("max-line", static_cast<int>(64 << 10)));
    options.limits.max_backlog =
        static_cast<std::size_t>(cli.get("max-backlog", 8));
    options.max_inflight_total =
        static_cast<std::size_t>(cli.get("max-inflight", 64));
    options.shed_watermark =
        static_cast<std::size_t>(cli.get("shed-watermark", 0));
    options.journal_path = cli.get("journal", std::string());
    options.recover = cli.has("recover");
    if (options.recover && options.journal_path.empty())
      throw ppd::ParseError("--recover needs --journal=FILE");

    run.set_meta(0, ppd::exec::ThreadPool::global().size());

    // Ring-bounded continuous tracing: recording is always on so `ppdctl
    // trace` works against a long-running daemon, but each thread keeps
    // only the most recent window of events. --trace=FILE still gets the
    // shutdown dump via ScopedRun.
    const int trace_ring = cli.get("trace-ring", 8192);
    if (trace_ring > 0) {
      ppd::obs::TraceSession& trace = ppd::obs::TraceSession::global();
      trace.set_ring_limit(static_cast<std::size_t>(trace_ring));
      if (!trace.active()) trace.start();
    }

    ppd::net::Server server(options);
    server.start();

    const std::string port_file = cli.get("port-file", std::string());
    if (!port_file.empty()) {
      std::ofstream os(port_file);
      if (!os)
        throw ppd::ParseError("cannot open " + port_file + " for writing");
      os << server.port() << "\n";
    }
    std::cout << "ppdd listening on 127.0.0.1:" << server.port() << std::endl;

    std::signal(SIGINT, ppdd_on_signal);
    std::signal(SIGTERM, ppdd_on_signal);
    while (g_signal == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    ppd::obs::log_info("ppdd",
                       "signal " + std::to_string(static_cast<int>(g_signal)) +
                           " received, draining");
    std::cout << "ppdd draining" << std::endl;
    server.drain();
    // Flush the obs sinks (--metrics / --trace) before announcing the stop:
    // a supervisor that gates on "ppdd stopped" can rely on the files.
    run.finish();
    std::cout << "ppdd stopped" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ppdd: " << e.what() << "\n";
    return 1;
  }
}
