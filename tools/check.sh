#!/usr/bin/env bash
# Repository gate: warnings-as-errors build, full test suite, static
# analysis of the bundled netlists with `ppdtool lint`, and (when the tool
# is installed) clang-tidy over the files changed on this branch.
#
#   tools/check.sh [build-dir]
#
# Exits non-zero on the first failing stage.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"

echo "== configure + build (PPD_WERROR=ON) =="
cmake -B "$build" -S "$repo" -DPPD_WERROR=ON >/dev/null
cmake --build "$build" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure

echo "== ppdtool lint over data/ =="
for f in "$repo"/data/*.bench; do
  echo "-- $f"
  "$build/tools/ppdtool" lint "$f"
done

echo "== observability smoke (metrics + trace JSON) =="
# A tiny coverage run must produce a valid metrics snapshot (with a
# non-empty Newton-iteration histogram and the standard meta block) and a
# well-formed Chrome trace (balanced B/E per lane).
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
"$build/tools/ppdtool" --metrics="$obs_dir/metrics.json" \
  --trace="$obs_dir/trace.json" --log-level=warn \
  coverage --method=pulse --samples=4 --points=3 >/dev/null
if command -v jq >/dev/null 2>&1; then
  jq -e '.meta.seed != null and .meta.timestamp != null' \
    "$obs_dir/metrics.json" >/dev/null
  jq -e '.histograms["spice.newton.iterations"].count > 0' \
    "$obs_dir/metrics.json" >/dev/null
  jq -e '.counters["core.coverage.items"] > 0' "$obs_dir/metrics.json" >/dev/null
  jq -e '.traceEvents | length > 0' "$obs_dir/trace.json" >/dev/null
else
  echo "(jq not installed; JSON schema checks skipped)"
fi
python3 - "$obs_dir/trace.json" <<'PYEOF'
import json, sys
from collections import defaultdict
events = json.load(open(sys.argv[1]))["traceEvents"]
depth = defaultdict(int)
last = {}
for e in events:
    if e["ph"] == "M":
        continue
    tid = e["tid"]
    assert e["ts"] >= last.get(tid, 0.0), f"non-monotonic ts on lane {tid}"
    last[tid] = e["ts"]
    depth[tid] += 1 if e["ph"] == "B" else -1
    assert depth[tid] >= 0, f"E without B on lane {tid}"
assert all(d == 0 for d in depth.values()), "unbalanced B/E pairs"
print(f"trace OK: {len(events)} events, {len(depth)} lanes")
PYEOF

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (changed files) =="
  # Tidy the C++ sources touched relative to the merge base with main (or
  # everything staged/modified when already on main).
  base="$(git -C "$repo" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$repo" rev-parse 'HEAD~1' 2>/dev/null || echo '')"
  changed="$(git -C "$repo" diff --name-only --diff-filter=d ${base:+$base} -- \
             '*.cpp' '*.hpp' | sort -u)"
  if [ -n "$changed" ]; then
    cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    (cd "$repo" && echo "$changed" | xargs clang-tidy -p "$build" --quiet)
  else
    echo "(no changed C++ files)"
  fi
else
  echo "== clang-tidy not installed; skipping static analysis stage =="
fi

echo "== all checks passed =="
