#!/usr/bin/env bash
# Repository gate: warnings-as-errors build, full test suite, static
# analysis of the bundled netlists with `ppdtool lint`, and (when the tool
# is installed) clang-tidy over the files changed on this branch.
#
#   tools/check.sh [build-dir]
#
# Exits non-zero on the first failing stage.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"

echo "== configure + build (PPD_WERROR=ON) =="
cmake -B "$build" -S "$repo" -DPPD_WERROR=ON >/dev/null
cmake --build "$build" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure

echo "== ppdtool lint over data/ =="
for f in "$repo"/data/*.bench; do
  echo "-- $f"
  "$build/tools/ppdtool" lint "$f"
done

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (changed files) =="
  # Tidy the C++ sources touched relative to the merge base with main (or
  # everything staged/modified when already on main).
  base="$(git -C "$repo" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$repo" rev-parse 'HEAD~1' 2>/dev/null || echo '')"
  changed="$(git -C "$repo" diff --name-only --diff-filter=d ${base:+$base} -- \
             '*.cpp' '*.hpp' | sort -u)"
  if [ -n "$changed" ]; then
    cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    (cd "$repo" && echo "$changed" | xargs clang-tidy -p "$build" --quiet)
  else
    echo "(no changed C++ files)"
  fi
else
  echo "== clang-tidy not installed; skipping static analysis stage =="
fi

echo "== all checks passed =="
