#!/usr/bin/env bash
# Repository gate: warnings-as-errors build, full test suite, static
# analysis of the bundled netlists with `ppdtool lint`, and (when the tool
# is installed) clang-tidy over the files changed on this branch.
#
#   tools/check.sh [build-dir]
#
# Exits non-zero on the first failing stage.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"

echo "== configure + build (PPD_WERROR=ON) =="
cmake -B "$build" -S "$repo" -DPPD_WERROR=ON >/dev/null
cmake --build "$build" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure

echo "== ppdtool lint over data/ =="
for f in "$repo"/data/*.bench; do
  echo "-- $f"
  "$build/tools/ppdtool" lint "$f"
done

echo "== sta stage (interval STA + PPD3xx screen over data/) =="
# The static-analysis gate: `ppdtool sta --json` must emit well-formed JSON
# with the documented shape for every shipped netlist, and the PPD3xx lint
# family must come back clean on them — or be suppressed here with a
# rationale.
for f in "$repo"/data/*.bench; do
  echo "-- $f"
  suppress=""
  case "$(basename "$f")" in
    c432_class.bench)
      # PPD302 (unjustifiable side input) is expected on the c432-class
      # netlist: its reconvergent fanout makes many individually-slackiest
      # paths unsensitizable while the sites stay covered through sibling
      # paths — the screen itself reroutes them (see the funnel in
      # bench_fig11). Anything else in the PPD3xx family is a regression.
      suppress="--suppress=PPD302";;
  esac
  if command -v jq >/dev/null 2>&1; then
    "$build/tools/ppdtool" sta --json --bench="$f" $suppress |
      jq -e '(.netlist.gates > 0) and (.timing.critical_delay_s > 0) and
             (.slackiest_paths | length > 0) and
             (.survival.sites >= .survival.pulse_dead_sites) and
             (.lint.diagnostics |
              map(select(.code | test("^PPD3"))) | length == 0)' >/dev/null
  else
    "$build/tools/ppdtool" sta --bench="$f" $suppress >/dev/null
  fi
done
# Unknown suppress codes are hard errors on the sta path too.
if "$build/tools/ppdtool" sta --suppress=PPD999 >/dev/null 2>&1; then
  echo "sta stage: unknown --suppress code unexpectedly accepted" >&2
  exit 1
fi

echo "== observability smoke (metrics + trace JSON) =="
# A tiny coverage run must produce a valid metrics snapshot (with a
# non-empty Newton-iteration histogram and the standard meta block) and a
# well-formed Chrome trace (balanced B/E per lane).
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
"$build/tools/ppdtool" --metrics="$obs_dir/metrics.json" \
  --trace="$obs_dir/trace.json" --log-level=warn \
  coverage --method=pulse --samples=4 --points=3 >/dev/null
if command -v jq >/dev/null 2>&1; then
  jq -e '.meta.seed != null and .meta.timestamp != null' \
    "$obs_dir/metrics.json" >/dev/null
  jq -e '.histograms["spice.newton.iterations"].count > 0' \
    "$obs_dir/metrics.json" >/dev/null
  jq -e '.counters["core.coverage.items"] > 0' "$obs_dir/metrics.json" >/dev/null
  jq -e '.traceEvents | length > 0' "$obs_dir/trace.json" >/dev/null
else
  echo "(jq not installed; JSON schema checks skipped)"
fi
echo "== chaos stage (coverage under deterministic fault injection) =="
# The resilience layer's contract: a sweep riddled with injected Newton
# failures still exits 0, quarantines the broken samples into valid JSON,
# and leaves a loadable checkpoint (grammar: ppd/resil/faultplan.hpp).
"$build/tools/ppdtool" coverage --method=pulse --samples=4 --points=3 \
  --fault-plan="seed=13,newton=0.35,nan=0.08" \
  --checkpoint="$obs_dir/chaos-ck.json" \
  --quarantine-json="$obs_dir/chaos-q.json" > "$obs_dir/chaos.out"
grep -q "n_quarantined" "$obs_dir/chaos.out"
if command -v jq >/dev/null 2>&1; then
  jq -e '.quarantined > 0' "$obs_dir/chaos-q.json" >/dev/null
  jq -e '.items == 12 and (.entries | length) == .quarantined' \
    "$obs_dir/chaos-q.json" >/dev/null
  jq -e '.resil_checkpoint == 1 and (.quarantine | length) > 0' \
    "$obs_dir/chaos-ck.json" >/dev/null
else
  echo "(jq not installed; chaos JSON checks skipped)"
fi
# Strict mode must restore fail-fast under the same plan.
if "$build/tools/ppdtool" coverage --method=pulse --samples=4 --points=3 \
  --strict --fault-plan="seed=13,newton=0.35,nan=0.08" \
  >/dev/null 2>&1; then
  echo "chaos stage: --strict unexpectedly succeeded under injection" >&2
  exit 1
fi

python3 - "$obs_dir/trace.json" <<'PYEOF'
import json, sys
from collections import defaultdict
events = json.load(open(sys.argv[1]))["traceEvents"]
depth = defaultdict(int)
last = {}
for e in events:
    if e["ph"] == "M":
        continue
    tid = e["tid"]
    assert e["ts"] >= last.get(tid, 0.0), f"non-monotonic ts on lane {tid}"
    last[tid] = e["ts"]
    depth[tid] += 1 if e["ph"] == "B" else -1
    assert depth[tid] >= 0, f"E without B on lane {tid}"
assert all(d == 0 for d in depth.values()), "unbalanced B/E pairs"
print(f"trace OK: {len(events)} events, {len(depth)} lanes")
PYEOF

echo "== solve-cache stage (reuse must be invisible to results) =="
# The solve cache memoizes measurements and warm-starts Newton within a
# process. Contract: a cached run's output is byte-identical to a run with
# the cache killed (PPD_CACHE=0), and the metrics snapshot shows real
# traffic — hits, misses, and warm-started operating points.
"$build/tools/ppdtool" --metrics="$obs_dir/cache-metrics.json" \
  coverage --method=pulse --samples=4 --points=3 --csv \
  > "$obs_dir/cov-cached.csv"
PPD_CACHE=0 "$build/tools/ppdtool" \
  coverage --method=pulse --samples=4 --points=3 --csv \
  > "$obs_dir/cov-cold.csv"
cmp "$obs_dir/cov-cached.csv" "$obs_dir/cov-cold.csv"
if command -v jq >/dev/null 2>&1; then
  jq -e '.counters["cache.solve.hit"] > 0 and
         .counters["cache.solve.miss"] > 0' \
    "$obs_dir/cache-metrics.json" >/dev/null
  jq -e '.counters["spice.newton.warm_start.hit"] > 0' \
    "$obs_dir/cache-metrics.json" >/dev/null
else
  echo "(jq not installed; cache metrics checks skipped)"
fi

echo "== service smoke (ppdd + ppdctl over loopback) =="
# The persistent service's contract: responses byte-identical to single-shot
# ppdtool, a scripted session streams well-formed JSON result events, and
# SIGTERM drains gracefully (exit 0, all in-flight queries finished).
"$build/tools/ppdd" --port=0 --port-file="$obs_dir/ppdd.port" \
  --drain-grace=10 --metrics="$obs_dir/ppdd-metrics.json" \
  > "$obs_dir/ppdd.log" 2>&1 &
ppdd_pid=$!
for _ in $(seq 1 50); do
  [ -s "$obs_dir/ppdd.port" ] && break
  sleep 0.1
done
port="$(cat "$obs_dir/ppdd.port")"
"$build/tools/ppdctl" --port="$port" ping | grep -q "OK pong"
"$build/tools/ppdctl" --port="$port" query coverage \
  --method=pulse --samples=4 --points=3 --csv > "$obs_dir/cov-served.csv"
cmp "$obs_dir/cov-served.csv" "$obs_dir/cov-cached.csv"
"$build/tools/ppdctl" --port="$port" batch > "$obs_dir/batch.out" <<'BATCH'
set points 5
query transfer
set samples 4
query calibrate
stats
quit
BATCH
if command -v jq >/dev/null 2>&1; then
  # Every result event carries the observability breakdown: a server-wide
  # query id plus queue/execute/serialize timings in separate fields.
  jq -e -s '(map(select(.event == "result")) | length == 2) and
            (map(select(.event == "result")) |
             all(.status == "ok" and .exit_code == 0 and .qid > 0 and
                 .queue_s >= 0 and .execute_s > 0 and .serialize_s >= 0))' \
    "$obs_dir/batch.out" >/dev/null
  # STATS is the structured per-kind snapshot: server totals, cache block,
  # and a latency histogram per query kind.
  "$build/tools/ppdctl" --port="$port" stats |
    jq -e '.server.queries_ok >= 3 and .server.queries_error == 0 and
           .cache.entries >= 0 and
           .kinds.coverage.ok >= 1 and
           .kinds.transfer.execute_s.count >= 1' >/dev/null
  # SUBSCRIBE streams consecutive metrics frames with increasing seq and an
  # embedded stats document.
  "$build/tools/ppdctl" --port="$port" subscribe --interval=0.1 --count=2 |
    jq -e -s 'length == 2 and (.[1].seq == .[0].seq + 1) and
              all(.event == "metrics" and
                  (.stats.server.queries_ok >= 3) and
                  (.interval | has("transfer")))' >/dev/null
  # TRACE dumps the server's span ring as a Chrome trace; served queries
  # appear tagged with their qid.
  "$build/tools/ppdctl" --port="$port" trace "$obs_dir/ppdd-trace.json"
  jq -e '.traceEvents | length > 0' "$obs_dir/ppdd-trace.json" >/dev/null
  jq -e '[.traceEvents[] | select(.args.qid? != null)] | length > 0' \
    "$obs_dir/ppdd-trace.json" >/dev/null
else
  echo "(jq not installed; service JSON checks skipped)"
fi
kill -TERM "$ppdd_pid"
wait "$ppdd_pid"  # graceful drain: exit 0 or set -e fails the stage
grep -q "ppdd stopped" "$obs_dir/ppdd.log"
# The drain flushed the server's metrics snapshot to disk.
if command -v jq >/dev/null 2>&1; then
  jq -e '.counters["net.queries.ok"] >= 3' \
    "$obs_dir/ppdd-metrics.json" >/dev/null
fi

echo "== service chaos stage (fault-injecting proxy over the wire) =="
# The hardening contract under socket chaos: test_chaos drives the service
# through ppd::net::ChaosProxy across ten deterministic FaultPlan seeds —
# partial writes, mid-frame resets, slow-loris stalls, delayed forwards —
# asserting no deadlocks, no leaked sessions, and no malformed frames.
"$build/tests/test_chaos" --gtest_brief=1
# End-to-end through the standalone proxy binary: a real ppdctl query
# crosses a chaotic chaosproxy (dribbled writes + delays; no resets, so a
# single attempt suffices) and must come back byte-identical.
"$build/tools/ppdd" --port=0 --port-file="$obs_dir/chaos-ppdd.port" \
  --drain-grace=10 > "$obs_dir/chaos-ppdd.log" 2>&1 &
chaos_ppdd_pid=$!
for _ in $(seq 1 50); do
  [ -s "$obs_dir/chaos-ppdd.port" ] && break
  sleep 0.1
done
"$build/tools/chaosproxy" --upstream="$(cat "$obs_dir/chaos-ppdd.port")" \
  --port=0 --port-file="$obs_dir/chaos-proxy.port" \
  --faults="seed=11,sock-partial=0.4,sock-delay=0.3:0.002" \
  > "$obs_dir/chaosproxy.log" 2>&1 &
chaosproxy_pid=$!
for _ in $(seq 1 50); do
  [ -s "$obs_dir/chaos-proxy.port" ] && break
  sleep 0.1
done
proxy_port="$(cat "$obs_dir/chaos-proxy.port")"
"$build/tools/ppdctl" --port="$proxy_port" ping | grep -q "OK pong"
"$build/tools/ppdctl" --port="$proxy_port" query coverage \
  --method=pulse --samples=4 --points=3 --csv > "$obs_dir/cov-chaos.csv"
cmp "$obs_dir/cov-chaos.csv" "$obs_dir/cov-cached.csv"
kill -TERM "$chaosproxy_pid"
wait "$chaosproxy_pid"
grep -q "partial_writes" "$obs_dir/chaosproxy.log"
kill -TERM "$chaos_ppdd_pid"
wait "$chaos_ppdd_pid"

echo "== crash recovery stage (kill -9, --recover, RESUME re-issue) =="
# The crash-safety contract: a ppdd killed with SIGKILL mid-batch, restarted
# from its journal with --recover, and re-joined by the same ppdctl batch
# (RESUME + idempotent re-issue by qid) yields a result set byte-identical
# to an uninterrupted run — with no query executed twice.
# transfer answers fast (the kill trigger); the heavier coverage sweep
# behind it is where the SIGKILL lands mid-execution.
cat > "$obs_dir/recover.batch" <<'BATCH'
set points 5
set samples 4
query transfer
query coverage
query calibrate
quit
BATCH
# Reference: the same batch against an undisturbed server.
"$build/tools/ppdd" --port=0 --port-file="$obs_dir/ref.port" \
  --drain-grace=10 > "$obs_dir/ref-ppdd.log" 2>&1 &
ref_pid=$!
for _ in $(seq 1 50); do [ -s "$obs_dir/ref.port" ] && break; sleep 0.1; done
"$build/tools/ppdctl" --port="$(cat "$obs_dir/ref.port")" batch \
  < "$obs_dir/recover.batch" > "$obs_dir/ref-results.out"
kill -TERM "$ref_pid"; wait "$ref_pid"
# Interrupted run: journal-backed server, SIGKILL after the first result.
"$build/tools/ppdd" --port=0 --port-file="$obs_dir/rec.port" \
  --journal="$obs_dir/ppdd.journal" --drain-grace=10 \
  > "$obs_dir/rec-ppdd.log" 2>&1 &
rec_pid=$!
for _ in $(seq 1 50); do [ -s "$obs_dir/rec.port" ] && break; sleep 0.1; done
rec_port="$(cat "$obs_dir/rec.port")"
"$build/tools/ppdctl" --port="$rec_port" --retries=15 --retry-backoff=0.3 \
  batch < "$obs_dir/recover.batch" > "$obs_dir/rec-results.out" &
batch_pid=$!
for _ in $(seq 1 100); do
  grep -q '"event":"result"' "$obs_dir/rec-results.out" 2>/dev/null && break
  sleep 0.1
done
kill -KILL "$rec_pid"
wait "$rec_pid" 2>/dev/null || true
# Restart on the same port from the journal; the ppdctl batch (still
# retrying in the background) RESUMEs its session and re-issues whatever
# was never acknowledged.
"$build/tools/ppdd" --port="$rec_port" \
  --journal="$obs_dir/ppdd.journal" --recover --drain-grace=10 \
  > "$obs_dir/rec-ppdd2.log" 2>&1 &
rec2_pid=$!
wait "$batch_pid"
# Byte-identity of the two result sets, and at-most-once execution of the
# pre-crash query on the recovered instance (its per-kind accepted counter
# must not move — an acked qid is redelivered, never re-run).
"$build/tools/ppdctl" --port="$rec_port" stats > "$obs_dir/rec-stats.json"
python3 - "$obs_dir/ref-results.out" "$obs_dir/rec-results.out" \
  "$obs_dir/rec-stats.json" <<'PYEOF'
import json, sys
def results(path):
    rows = []
    for line in open(path):
        line = line.strip()
        if not line.startswith('{"event":"result"'):
            continue
        e = json.loads(line)
        rows.append((e["id"], e["kind"], e["status"], e["exit_code"], e["body"]))
    return sorted(rows)
ref, rec = results(sys.argv[1]), results(sys.argv[2])
assert len(ref) == 3, f"reference run produced {len(ref)} results"
assert ref == rec, "recovered result set differs from uninterrupted run:\n%r\n%r" % (ref, rec)
stats = json.load(open(sys.argv[3]))
# The first query (transfer) completed and was acked before the SIGKILL:
# the recovered instance must never have admitted it again.
assert stats["kinds"]["transfer"]["accepted"] == 0, stats["kinds"]["transfer"]
print("recovery OK: %d results byte-identical, no duplicate execution" % len(rec))
PYEOF
kill -TERM "$rec2_pid"
wait "$rec2_pid"

echo "== batch kernel stage (batched vs scalar coverage, byte-identical) =="
# The factor-once/solve-many kernel's end-to-end contract: routing a sweep
# through --batch changes throughput, never bytes. Two fresh processes (no
# shared solve cache), identical CSVs.
"$build/tools/ppdtool" coverage --method=pulse --samples=4 --points=3 \
  --csv > "$obs_dir/cov-scalar.csv"
"$build/tools/ppdtool" coverage --method=pulse --samples=4 --points=3 \
  --batch --csv > "$obs_dir/cov-batch.csv"
cmp "$obs_dir/cov-scalar.csv" "$obs_dir/cov-batch.csv"
"$build/tools/ppdtool" coverage --method=delay --samples=4 --points=3 \
  --csv > "$obs_dir/covd-scalar.csv"
"$build/tools/ppdtool" coverage --method=delay --samples=4 --points=3 \
  --batch --csv > "$obs_dir/covd-batch.csv"
cmp "$obs_dir/covd-scalar.csv" "$obs_dir/covd-batch.csv"

echo "== bench gate (perf-regression rules over bench output) =="
# tools/bench_gate.py compares a bench's JSON rows against the committed
# baseline rules; a byte-identity break or an order-of-magnitude latency
# regression fails the repo gate.
python3 "$repo/tools/bench_gate.py" --self-test
"$build/bench/bench_service_load" --clients=4 --rounds=1 |
  python3 "$repo/tools/bench_gate.py" \
    --baseline "$repo/bench/baseline/service_load.json" -

echo "== resil + exec + cache + net + sta under TSan and UBSan =="
# The recovery/quarantine/checkpoint paths are themselves exercised under
# injected chaos, the sharded solve cache takes concurrent mixed traffic,
# and the path screen fans out across a thread pool; run those suites with
# the race and UB detectors on.
for san in thread undefined; do
  sbuild="$build-$san"
  cmake -B "$sbuild" -S "$repo" -DPPD_SANITIZE="$san" >/dev/null
  cmake --build "$sbuild" -j "$(nproc)" \
    --target test_resil test_exec test_cache test_net test_chaos \
    test_recovery test_sta test_core >/dev/null
  echo "-- $san: test_resil"
  "$sbuild/tests/test_resil" --gtest_brief=1
  echo "-- $san: test_exec"
  "$sbuild/tests/test_exec" --gtest_brief=1
  echo "-- $san: test_cache"
  "$sbuild/tests/test_cache" --gtest_brief=1
  echo "-- $san: test_net"
  "$sbuild/tests/test_net" --gtest_brief=1
  echo "-- $san: test_chaos"
  "$sbuild/tests/test_chaos" --gtest_brief=1
  echo "-- $san: test_recovery"
  "$sbuild/tests/test_recovery" --gtest_brief=1
  echo "-- $san: test_sta"
  "$sbuild/tests/test_sta" --gtest_brief=1
  # The batch kernel advancing N samples while resistance columns fan out
  # over the exec pool — the shared-nothing-per-sample claim under the race
  # detector (and UBSan for the bit-punning change tracking).
  echo "-- $san: test_core (batch kernel)"
  "$sbuild/tests/test_core" --gtest_filter='CoverageBatch.*' --gtest_brief=1
done

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (changed files) =="
  # Tidy the C++ sources touched relative to the merge base with main (or
  # everything staged/modified when already on main).
  base="$(git -C "$repo" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$repo" rev-parse 'HEAD~1' 2>/dev/null || echo '')"
  changed="$(git -C "$repo" diff --name-only --diff-filter=d ${base:+$base} -- \
             '*.cpp' '*.hpp' | sort -u)"
  if [ -n "$changed" ]; then
    cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    (cd "$repo" && echo "$changed" | xargs clang-tidy -p "$build" --quiet)
  else
    echo "(no changed C++ files)"
  fi
else
  echo "== clang-tidy not installed; skipping static analysis stage =="
fi

echo "== all checks passed =="
