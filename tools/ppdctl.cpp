// ppdctl — client for the ppdd pulse-test service.
//
//   ppdctl [--port=N] ping
//       One round trip; prints the server's reply.
//
//   ppdctl [--port=N] stats
//       Print the server's one-line stats JSON (queries, sessions, solve
//       cache totals).
//
//   ppdctl [--port=N] query <kind> [--key=value ...]
//       One-shot query: open a session, SET every flag, run the query, and
//       print the result body — byte-identical to the equivalent ppdtool
//       invocation — exiting with the query's exit code.
//       kind: transfer|calibrate|coverage|rmin|lint|sta
//       `query lint <file>` uploads the local file first.
//       `query sta [<file>]` optionally uploads a .bench file; without one
//       the server uses its `bench` config path or the bundled benchmark.
//
//   ppdctl [--port=N] batch
//       Scripted session from stdin, one command per line:
//         set <key> <value>
//         upload <name> <local-path>
//         query <kind> [<arg>]     -> prints the raw result event JSON
//         stats                    -> prints the stats JSON
//         ping
//         quit
//       Lines starting with '#' and blank lines are skipped. Exits non-zero
//       if any query failed.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace {

using namespace ppd;

std::string slurp_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ParseError("cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string base_name(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int cmd_query(net::Client& client, int argc, char** argv) {
  if (argc < 1)
    throw ParseError(
        "query needs a kind (transfer|calibrate|coverage|rmin|lint|sta)");
  const std::string kind = argv[0];
  std::string arg;
  int flags_from = 1;
  if (util::iequals(kind, "lint")) {
    if (argc < 2) throw ParseError("query lint needs a file");
    const std::string path = argv[1];
    arg = base_name(path);
    client.upload(arg, slurp_file(path));
    flags_from = 2;
  } else if (util::iequals(kind, "sta") && argc >= 2 &&
             !util::starts_with(argv[1], "--")) {
    const std::string path = argv[1];
    arg = base_name(path);
    client.upload(arg, slurp_file(path));
    flags_from = 2;
  }
  for (int i = flags_from; i < argc; ++i) {
    const std::string flag = argv[i];
    if (!util::starts_with(flag, "--"))
      throw ParseError("expected --key=value, got: " + flag);
    const auto eq = flag.find('=');
    const std::string key = flag.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    const std::string value =
        eq == std::string::npos ? "1" : flag.substr(eq + 1);
    client.set(key, value);
  }
  const net::Client::Result res = client.run(kind, arg);
  if (res.status != "ok") {
    std::cerr << "ppdctl: query " << res.status << ": " << res.error << "\n";
    return res.status == "cancelled" ? 3 : 1;
  }
  std::cout << res.body;
  return res.exit_code;
}

int cmd_batch(net::Client& client) {
  int worst = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto words = util::split_ws(trimmed);
    const std::string& cmd = words[0];
    try {
      if (util::iequals(cmd, "quit")) {
        break;
      } else if (util::iequals(cmd, "ping")) {
        std::cout << client.ping() << "\n";
      } else if (util::iequals(cmd, "stats")) {
        std::cout << client.stats() << "\n";
      } else if (util::iequals(cmd, "set") && words.size() >= 3) {
        // The value is everything after the key, verbatim.
        const auto key_pos = line.find(words[1], line.find(words[0]) +
                                                     words[0].size());
        const auto value =
            util::trim(line.substr(key_pos + words[1].size()));
        client.set(words[1], std::string(value));
      } else if (util::iequals(cmd, "upload") && words.size() == 3) {
        client.upload(words[1], slurp_file(words[2]));
      } else if (util::iequals(cmd, "query") && words.size() >= 2) {
        const std::string arg = words.size() > 2 ? words[2] : std::string();
        const net::Client::Result res = client.run(words[1], arg);
        std::cout << res.raw << "\n";
        if (res.status != "ok" || res.exit_code != 0) worst = 1;
      } else {
        throw ParseError("unknown batch command: " + std::string(trimmed));
      }
    } catch (const net::ServiceError& e) {
      std::cerr << "ppdctl: " << e.what() << "\n";
      worst = 1;
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  ppd::obs::ScopedRun run(ppd::obs::extract_run_options(argc, argv));
  try {
    // Strip the global --port flag; everything after the mode word belongs
    // to the mode (query flags are session keys, not ppdctl flags).
    std::uint16_t port = net::kDefaultPort;
    util::strip_args(argc, argv, [&port](std::string_view arg) {
      if (!util::starts_with(arg, "--port=")) return false;
      port = static_cast<std::uint16_t>(
          std::stoi(std::string(arg.substr(std::string("--port=").size()))));
      return true;
    });
    if (argc < 2) {
      std::cerr << "usage: ppdctl [--port=N] <ping|stats|query|batch> ...\n"
                   "(see the header of tools/ppdctl.cpp)\n";
      return 2;
    }
    const std::string mode = argv[1];

    net::Client client = net::Client::connect(port);
    int code = 2;
    if (mode == "ping") {
      std::cout << client.ping() << " (session " << client.session() << ")\n";
      code = 0;
    } else if (mode == "stats") {
      std::cout << client.stats() << "\n";
      code = 0;
    } else if (mode == "query") {
      code = cmd_query(client, argc - 2, argv + 2);
    } else if (mode == "batch") {
      code = cmd_batch(client);
    } else {
      std::cerr << "ppdctl: unknown mode: " << mode << "\n";
    }
    client.quit();
    return code;
  } catch (const std::exception& e) {
    std::cerr << "ppdctl: " << e.what() << "\n";
    return 1;
  }
}
