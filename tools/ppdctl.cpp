// ppdctl — client for the ppdd pulse-test service.
//
//   ppdctl [--port=N] ping
//       One round trip; prints the server's reply.
//
//   ppdctl [--port=N] stats
//       Print the server's one-line stats JSON (queries, sessions, solve
//       cache totals).
//
//   ppdctl [--port=N] query <kind> [--key=value ...]
//       One-shot query: open a session, SET every flag, run the query, and
//       print the result body — byte-identical to the equivalent ppdtool
//       invocation — exiting with the query's exit code.
//       kind: transfer|calibrate|coverage|rmin|lint|sta
//       `query lint <file>` uploads the local file first.
//       `query sta [<file>]` optionally uploads a .bench file; without one
//       the server uses its `bench` config path or the bundled benchmark.
//
//   ppdctl [--port=N] batch
//       Scripted session from stdin, one command per line:
//         set <key> <value>
//         upload <name> <local-path>
//         query <kind> [<arg>]     -> prints the raw result event JSON
//         stats                    -> prints the stats JSON
//         ping
//         quit
//       Lines starting with '#' and blank lines are skipped. Exits non-zero
//       if any query failed.
//
//   ppdctl [--port=N] subscribe [--interval=S] [--count=N]
//       SUBSCRIBE to the server's metrics stream and print the raw
//       "metrics" event JSON lines (one per line; machine-friendly). Stops
//       after N events when --count is given, otherwise streams until the
//       server goes away.
//
//   ppdctl [--port=N] top [--interval=S] [--count=N]
//       Live view over the same stream: a refreshing per-query-kind table
//       (totals, qps, latency percentiles) plus server/cache summary
//       lines. Clears the screen between frames on a terminal.
//
//   ppdctl [--port=N] trace <out.json>
//       Pull the server's Chrome trace-event dump of recent served-query
//       spans (load in chrome://tracing or ui.perfetto.dev; result events'
//       "qid" matches the spans' args.qid).
//
// Resilience flags (global, any mode):
//
//   --retries=N        extra attempts after a failed connect, a BUSY
//                      submit, or a dropped connection mid-batch
//                      (default 0 = fail fast)
//   --retry-backoff=s  base backoff before a retry, doubling per attempt
//                      (default 0.2)
//   --resume=TOKEN     RESUME this session token instead of opening a
//                      fresh session (journal-backed servers only); batch
//                      mode re-issues unacknowledged queries idempotently
//                      by qid after a reconnect, so a killed-and-recovered
//                      ppdd yields the same result set as an uninterrupted
//                      run.
#include <unistd.h>

#include <chrono>
#include <thread>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/resil/retry.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace {

using namespace ppd;

/// Where and how persistently to reach the server (the global flags).
struct Endpoint {
  std::uint16_t port = net::kDefaultPort;
  int retries = 0;          ///< extra attempts after the first
  double backoff_s = 0.2;   ///< base backoff, doubled per attempt
};

void backoff_sleep(const Endpoint& ep, int attempt) {
  if (attempt <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      ep.backoff_s * static_cast<double>(1 << std::min(attempt - 1, 8))));
}

/// A ServiceError that means "the connection is gone" (retry/resume-able),
/// as opposed to a definitive ERR reply from the server.
bool is_disconnect(const net::ServiceError& e) {
  const std::string what = e.what();
  return what.find("closed") != std::string::npos;
}

/// Connect (or RESUME) with the --retries/--retry-backoff ladder. A
/// definitive server refusal (ERR, e.g. an unresumable token) is not
/// retried — only socket-level failures and closed streams are.
net::Client connect_with_retry(const Endpoint& ep,
                               const std::string& resume_token) {
  std::optional<net::Client> client;
  std::string last_error;
  const resil::RetryPolicy policy{
      "ppdctl.connect", {{"connect", 1 + std::max(ep.retries, 0)}}};
  const auto outcome = resil::run_ladder(
      policy,
      [&](const resil::RetryRung&, int attempt) {
        backoff_sleep(ep, attempt);
        try {
          client = resume_token.empty()
                       ? net::Client::connect(ep.port)
                       : net::Client::resume(ep.port, resume_token);
          return true;
        } catch (const net::NetError& e) {
          last_error = e.what();
          return false;
        } catch (const net::ServiceError& e) {
          if (!is_disconnect(e)) throw;
          last_error = e.what();
          return false;
        }
      },
      resil::Deadline::never(), "ppdctl connect");
  if (!outcome.success)
    throw net::ServiceError("cannot reach ppdd on port " +
                            std::to_string(ep.port) + " after " +
                            std::to_string(outcome.total_attempts) +
                            " attempts: " + last_error);
  return std::move(*client);
}

std::string slurp_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ParseError("cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string base_name(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int cmd_query(net::Client& client, int argc, char** argv) {
  if (argc < 1)
    throw ParseError(
        "query needs a kind (transfer|calibrate|coverage|rmin|lint|sta)");
  const std::string kind = argv[0];
  std::string arg;
  int flags_from = 1;
  if (util::iequals(kind, "lint")) {
    if (argc < 2) throw ParseError("query lint needs a file");
    const std::string path = argv[1];
    arg = base_name(path);
    client.upload(arg, slurp_file(path));
    flags_from = 2;
  } else if (util::iequals(kind, "sta") && argc >= 2 &&
             !util::starts_with(argv[1], "--")) {
    const std::string path = argv[1];
    arg = base_name(path);
    client.upload(arg, slurp_file(path));
    flags_from = 2;
  }
  for (int i = flags_from; i < argc; ++i) {
    const std::string flag = argv[i];
    if (!util::starts_with(flag, "--"))
      throw ParseError("expected --key=value, got: " + flag);
    const auto eq = flag.find('=');
    const std::string key = flag.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    const std::string value =
        eq == std::string::npos ? "1" : flag.substr(eq + 1);
    client.set(key, value);
  }
  const net::Client::Result res = client.run(kind, arg);
  if (res.status != "ok") {
    std::cerr << "ppdctl: query " << res.status << ": " << res.error << "\n";
    return res.status == "cancelled" ? 3 : 1;
  }
  std::cout << res.body;
  return res.exit_code;
}

/// Parse the shared subscribe/top flags (--interval=S, --count=N).
void parse_stream_flags(int argc, char** argv, double& interval,
                        long long& count) {
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    if (util::starts_with(flag, "--interval=")) {
      interval = std::stod(flag.substr(std::string("--interval=").size()));
    } else if (util::starts_with(flag, "--count=")) {
      count = std::stoll(flag.substr(std::string("--count=").size()));
    } else {
      throw ParseError("unknown flag: " + flag +
                       " (expected --interval=S or --count=N)");
    }
  }
}

bool is_metrics_event(const std::string& line) {
  return util::starts_with(line, "{\"event\":\"metrics\"");
}

int cmd_subscribe(net::Client& client, int argc, char** argv) {
  double interval = 1.0;
  long long count = -1;
  parse_stream_flags(argc, argv, interval, count);
  client.subscribe(interval);
  long long seen = 0;
  while (count < 0 || seen < count) {
    const auto line = client.next_event();
    if (!line) break;
    if (!is_metrics_event(*line)) continue;
    std::cout << *line << "\n" << std::flush;
    ++seen;
  }
  // Open-ended streams end when the server drains — that is a success.
  return count < 0 || seen >= count ? 0 : 1;
}

double hist_number(const net::JsonValue& hist, const char* key) {
  const net::JsonValue* v = hist.find(key);
  return v != nullptr && v->kind == net::JsonValue::Kind::kNumber
             ? v->as_number()
             : 0.0;
}

void render_top_frame(const net::JsonValue& ev, bool clear) {
  const net::JsonValue& stats = ev.at("stats");
  const net::JsonValue& server = stats.at("server");
  const net::JsonValue& cache = stats.at("cache");
  const net::JsonValue& kinds = stats.at("kinds");
  const net::JsonValue& interval = ev.at("interval");
  const double dt = ev.at("interval_s").as_number();

  std::ostringstream os;
  if (clear) os << "\x1b[H\x1b[J";  // home + clear: refresh in place
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "ppdd up %.0fs  sessions %.0f  in-flight %.0f  "
                "accepted %.0f ok %.0f err %.0f cxl %.0f busy %.0f\n",
                server.at("uptime_s").as_number(),
                server.at("sessions_active").as_number(),
                server.at("jobs_in_flight").as_number(),
                server.at("queries_accepted").as_number(),
                server.at("queries_ok").as_number(),
                server.at("queries_error").as_number(),
                server.at("queries_cancelled").as_number(),
                server.at("queries_busy").as_number());
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "cache hits %.0f misses %.0f hit-ratio %.2f  entries %.0f\n",
                cache.at("hits").as_number(), cache.at("misses").as_number(),
                cache.at("hit_ratio").as_number(),
                cache.at("entries").as_number());
  os << buf;
  std::snprintf(buf, sizeof(buf), "%-10s %8s %6s %6s %8s %10s %10s\n", "kind",
                "ok", "err", "cxl", "qps", "p50 ms", "p99 ms");
  os << buf;
  for (const auto& [name, kind] : kinds.members) {
    const net::JsonValue& exec_hist = kind.at("execute_s");
    double qps = 0.0;
    if (const net::JsonValue* iv = interval.find(name);
        iv != nullptr && dt > 0.0)
      qps = iv->at("ok").as_number() / dt;
    std::snprintf(buf, sizeof(buf),
                  "%-10s %8.0f %6.0f %6.0f %8.1f %10.2f %10.2f\n",
                  name.c_str(), kind.at("ok").as_number(),
                  kind.at("error").as_number(),
                  kind.at("cancelled").as_number(), qps,
                  hist_number(exec_hist, "p50") * 1e3,
                  hist_number(exec_hist, "p99") * 1e3);
    os << buf;
  }
  std::cout << os.str() << std::flush;
}

int cmd_top(net::Client& client, int argc, char** argv) {
  double interval = 1.0;
  long long count = -1;
  parse_stream_flags(argc, argv, interval, count);
  client.subscribe(interval);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  long long seen = 0;
  while (count < 0 || seen < count) {
    const auto line = client.next_event();
    if (!line) break;
    if (!is_metrics_event(*line)) continue;
    render_top_frame(net::parse_json(*line), tty);
    ++seen;
  }
  return count < 0 || seen >= count ? 0 : 1;
}

int cmd_trace(net::Client& client, int argc, char** argv) {
  if (argc < 1) throw ParseError("usage: ppdctl trace <out.json>");
  const std::string path = argv[0];
  const std::string dump = client.trace_dump();
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ParseError("cannot open " + path + " for writing");
  os << dump;
  if (!os) throw ParseError("short write to " + path);
  std::cerr << "ppdctl: wrote " << dump.size() << " bytes to " << path
            << "\n";
  return 0;
}

/// One batch query with the full recovery ladder: BUSY backs off and
/// retries; a dropped connection reconnects, RESUMEs the same session and
/// re-issues the query by qid — the server dedups ids it already ran (or
/// redelivers the journaled result for acked ones), so a crash/restart
/// cycle cannot double-execute or lose a query.
net::Client::Result run_batch_query(net::Client& client, const Endpoint& ep,
                                    const std::string& kind,
                                    const std::string& arg) {
  std::uint64_t issued_id = 0;
  net::Client::Result res;
  bool got = false;
  std::string last_error = "BUSY";
  const resil::RetryPolicy policy{
      "ppdctl.query", {{"submit", 1 + std::max(ep.retries, 0)}}};
  const auto outcome = resil::run_ladder(
      policy,
      [&](const resil::RetryRung&, int attempt) {
        backoff_sleep(ep, attempt);
        try {
          net::Client::SubmitOptions opts;
          opts.id = issued_id;  // 0 on the first attempt = fresh admission
          const auto sub = client.submit(kind, arg, opts);
          if (sub.busy) {
            last_error = sub.reply;
            return false;
          }
          issued_id = sub.id;
          res = client.wait(sub.id);
          got = true;
          return true;
        } catch (const net::NetError& e) {
          last_error = e.what();
        } catch (const net::ServiceError& e) {
          if (!is_disconnect(e)) throw;
          last_error = e.what();
        }
        // Connection lost mid-query: reconnect and RESUME this session.
        // The next attempt re-issues `issued_id` idempotently.
        const std::string token = client.session();
        try {
          client = connect_with_retry(ep, token);
        } catch (const net::ServiceError& e) {
          last_error = e.what();  // not resumable (no journal / evicted)
        }
        return false;
      },
      resil::Deadline::never(), "ppdctl query");
  if (!got)
    throw net::ServiceError("query " + kind + " failed after " +
                            std::to_string(outcome.total_attempts) +
                            " attempts: " + last_error);
  return res;
}

int cmd_batch(net::Client& client, const Endpoint& ep) {
  int worst = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto words = util::split_ws(trimmed);
    const std::string& cmd = words[0];
    try {
      if (util::iequals(cmd, "quit")) {
        break;
      } else if (util::iequals(cmd, "ping")) {
        std::cout << client.ping() << "\n";
      } else if (util::iequals(cmd, "stats")) {
        std::cout << client.stats() << "\n";
      } else if (util::iequals(cmd, "set") && words.size() >= 3) {
        // The value is everything after the key, verbatim.
        const auto key_pos = line.find(words[1], line.find(words[0]) +
                                                     words[0].size());
        const auto value =
            util::trim(line.substr(key_pos + words[1].size()));
        client.set(words[1], std::string(value));
      } else if (util::iequals(cmd, "upload") && words.size() == 3) {
        client.upload(words[1], slurp_file(words[2]));
      } else if (util::iequals(cmd, "query") && words.size() >= 2) {
        const std::string arg = words.size() > 2 ? words[2] : std::string();
        const net::Client::Result res =
            run_batch_query(client, ep, words[1], arg);
        std::cout << res.raw << "\n";
        if (res.status != "ok" || res.exit_code != 0) worst = 1;
      } else {
        throw ParseError("unknown batch command: " + std::string(trimmed));
      }
    } catch (const net::ServiceError& e) {
      std::cerr << "ppdctl: " << e.what() << "\n";
      worst = 1;
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  ppd::obs::ScopedRun run(ppd::obs::extract_run_options(argc, argv));
  try {
    // Strip the global flags; everything after the mode word belongs to
    // the mode (query flags are session keys, not ppdctl flags).
    Endpoint ep;
    std::string resume_token;
    util::strip_args(argc, argv, [&ep, &resume_token](std::string_view arg) {
      const auto value = [&arg](const char* prefix) {
        return std::string(arg.substr(std::string(prefix).size()));
      };
      if (util::starts_with(arg, "--port=")) {
        ep.port = static_cast<std::uint16_t>(std::stoi(value("--port=")));
      } else if (util::starts_with(arg, "--retries=")) {
        ep.retries = std::stoi(value("--retries="));
      } else if (util::starts_with(arg, "--retry-backoff=")) {
        ep.backoff_s = std::stod(value("--retry-backoff="));
      } else if (util::starts_with(arg, "--resume=")) {
        resume_token = value("--resume=");
      } else {
        return false;
      }
      return true;
    });
    if (argc < 2) {
      std::cerr << "usage: ppdctl [--port=N] [--retries=N] "
                   "[--retry-backoff=s] [--resume=TOKEN] "
                   "<ping|stats|query|batch|subscribe|top|trace> ...\n"
                   "(see the header of tools/ppdctl.cpp)\n";
      return 2;
    }
    const std::string mode = argv[1];

    net::Client client = connect_with_retry(ep, resume_token);
    int code = 2;
    if (mode == "ping") {
      std::cout << client.ping() << " (session " << client.session() << ")\n";
      code = 0;
    } else if (mode == "stats") {
      std::cout << client.stats() << "\n";
      code = 0;
    } else if (mode == "query") {
      code = cmd_query(client, argc - 2, argv + 2);
    } else if (mode == "batch") {
      code = cmd_batch(client, ep);
    } else if (mode == "subscribe") {
      code = cmd_subscribe(client, argc - 2, argv + 2);
    } else if (mode == "top") {
      code = cmd_top(client, argc - 2, argv + 2);
    } else if (mode == "trace") {
      code = cmd_trace(client, argc - 2, argv + 2);
    } else {
      std::cerr << "ppdctl: unknown mode: " << mode << "\n";
    }
    client.quit();
    return code;
  } catch (const std::exception& e) {
    std::cerr << "ppdctl: " << e.what() << "\n";
    return 1;
  }
}
